//! OpenTuner-style baseline (Ansel et al., PACT'14): an ensemble of
//! numerical search techniques coordinated by an AUC-bandit meta-technique.
//! The reward is the weighted sum of normalized search speed and recall,
//! which is how the paper extends OpenTuner to VDMS tuning.
//!
//! Techniques in the pool (mirroring OpenTuner's default ensemble at our
//! scale): uniform random, small-step hill climbing around the incumbent,
//! large-step pattern moves, and genetic crossover of elites. The bandit
//! credits a technique when its proposal improves the best reward seen and
//! picks techniques by decayed credit plus a UCB exploration bonus.

use crate::weighted_reward;
use rand::Rng;
use vdms::VdmsConfig;
use vdtuner_core::space::SpaceSpec;
use vecdata::rng::{derive, rng, standard_normal};
use workload::{Observation, Tuner};

/// The numerical techniques in the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Technique {
    UniformRandom,
    HillClimbSmall,
    PatternLarge,
    GeneticCross,
}

const TECHNIQUES: [Technique; 4] = [
    Technique::UniformRandom,
    Technique::HillClimbSmall,
    Technique::PatternLarge,
    Technique::GeneticCross,
];

/// Per-technique bandit statistics.
#[derive(Debug, Clone, Default)]
struct Arm {
    uses: u32,
    /// Exponentially decayed credit ("area under the curve" of recent wins).
    credit: f64,
}

/// OpenTuner-style ensemble tuner.
pub struct OpenTunerStyle {
    space: SpaceSpec,
    seed: u64,
    iter: u64,
    arms: Vec<Arm>,
    /// Which arm produced the pending proposal (credited in `observe`).
    pending_arm: Option<usize>,
    best_reward: f64,
    max_qps: f64,
    max_recall: f64,
}

impl OpenTunerStyle {
    pub fn new(seed: u64) -> OpenTunerStyle {
        OpenTunerStyle::with_space(SpaceSpec::legacy(), seed)
    }

    /// Ensemble search over an arbitrary tuning space (e.g. with the
    /// topology dimension).
    pub fn with_space(space: SpaceSpec, seed: u64) -> OpenTunerStyle {
        OpenTunerStyle {
            space,
            seed,
            iter: 0,
            arms: vec![Arm::default(); TECHNIQUES.len()],
            pending_arm: None,
            best_reward: f64::MIN,
            max_qps: 1e-9,
            max_recall: 1e-9,
        }
    }

    /// AUC-bandit selection: decayed credit + UCB exploration bonus.
    fn select_arm(&self) -> usize {
        let total: u32 = self.arms.iter().map(|a| a.uses).sum::<u32>().max(1);
        let mut best = 0usize;
        let mut best_score = f64::MIN;
        for (i, arm) in self.arms.iter().enumerate() {
            let exploit = arm.credit / (arm.uses.max(1) as f64);
            let explore = (2.0 * (total as f64).ln() / arm.uses.max(1) as f64).sqrt();
            let score = exploit + 0.5 * explore;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Top `n` observation encodings by reward.
    fn elites(&self, history: &[Observation], n: usize) -> Vec<Vec<f64>> {
        let mut scored: Vec<(f64, &Observation)> =
            history.iter().map(|o| (weighted_reward(history, o.qps, o.recall), o)).collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().take(n).map(|(_, o)| self.space.encode(&o.config)).collect()
    }
}

impl Tuner for OpenTunerStyle {
    fn name(&self) -> &str {
        "OpenTuner"
    }

    fn propose(&mut self, history: &[Observation]) -> VdmsConfig {
        self.iter += 1;
        let dims = self.space.dims();
        let mut r = rng(derive(self.seed, self.iter));
        if history.is_empty() {
            self.pending_arm = None;
            return self.space.seed_default();
        }
        let arm_idx = self.select_arm();
        self.pending_arm = Some(arm_idx);
        self.arms[arm_idx].uses += 1;

        let elites = self.elites(history, 4);
        let base = elites.first().cloned().unwrap_or_else(|| vec![0.5; dims]);
        let u: Vec<f64> = match TECHNIQUES[arm_idx] {
            Technique::UniformRandom => (0..dims).map(|_| r.gen()).collect(),
            Technique::HillClimbSmall => {
                base.iter().map(|&v| (v + 0.03 * standard_normal(&mut r)).clamp(0.0, 1.0)).collect()
            }
            Technique::PatternLarge => {
                // Move far along a single random coordinate (pattern search).
                let mut v = base.clone();
                let d = r.gen_range(0..dims);
                v[d] = r.gen();
                v
            }
            Technique::GeneticCross => {
                let other = if elites.len() > 1 {
                    elites[r.gen_range(1..elites.len())].clone()
                } else {
                    (0..dims).map(|_| r.gen()).collect()
                };
                base.iter()
                    .zip(&other)
                    .map(|(&a, &b)| {
                        let v = if r.gen::<bool>() { a } else { b };
                        (v + 0.01 * standard_normal(&mut r)).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        };
        self.space.decode(&u).expect("technique proposals span the full space")
    }

    fn observe(&mut self, obs: &Observation) {
        // Weighted-sum reward with running-max normalization (tracked
        // incrementally so `observe` needs no history).
        self.max_qps = self.max_qps.max(obs.qps);
        self.max_recall = self.max_recall.max(obs.recall);
        let reward = 0.5 * obs.qps / self.max_qps + 0.5 * obs.recall / self.max_recall;
        let improved = reward > self.best_reward;
        if improved {
            self.best_reward = reward;
        }
        if let Some(arm) = self.pending_arm.take() {
            // Exponential decay, +1 credit on improvement.
            for a in &mut self.arms {
                a.credit *= 0.95;
            }
            if improved {
                self.arms[arm].credit += 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{DatasetKind, DatasetSpec};
    use workload::{run_tuner, Evaluator, Workload};

    #[test]
    fn runs_end_to_end() {
        let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
        let mut ev = Evaluator::new(&w, 1);
        let mut t = OpenTunerStyle::new(5);
        run_tuner(&mut t, &mut ev, 8);
        assert_eq!(ev.len(), 8);
    }

    #[test]
    fn bandit_tries_multiple_techniques() {
        let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
        let mut ev = Evaluator::new(&w, 1);
        let mut t = OpenTunerStyle::new(5);
        run_tuner(&mut t, &mut ev, 12);
        let used: usize = t.arms.iter().filter(|a| a.uses > 0).count();
        assert!(used >= 3, "UCB bonus must force exploration, used {used}");
    }

    #[test]
    fn first_proposal_is_default() {
        let mut t = OpenTunerStyle::new(5);
        assert_eq!(t.propose(&[]).summary(), VdmsConfig::default_config().summary());
    }
}
