//! Random search via Latin hypercube sampling (the paper's `Random`
//! baseline, citing Bergstra & Bengio for why random search is a strong
//! baseline).

use mobo::sampling::latin_hypercube;
use vdms::VdmsConfig;
use vdtuner_core::space::SpaceSpec;
use vecdata::rng::derive;
use workload::{Observation, Tuner};

/// LHS random search over the full tuning space (16-dimensional by
/// default; any [`SpaceSpec`] via [`RandomLhs::with_space`]).
pub struct RandomLhs {
    space: SpaceSpec,
    seed: u64,
    batch: Vec<Vec<f64>>,
    batch_no: u64,
    cursor: usize,
    batch_size: usize,
}

impl RandomLhs {
    pub fn new(seed: u64) -> RandomLhs {
        RandomLhs::with_space(SpaceSpec::legacy(), seed)
    }

    /// Random search over an arbitrary tuning space (e.g. with the
    /// topology dimension).
    pub fn with_space(space: SpaceSpec, seed: u64) -> RandomLhs {
        RandomLhs { space, seed, batch: Vec::new(), batch_no: 0, cursor: 0, batch_size: 50 }
    }
}

impl Tuner for RandomLhs {
    fn name(&self) -> &str {
        "Random"
    }

    fn propose(&mut self, _history: &[Observation]) -> VdmsConfig {
        if self.cursor >= self.batch.len() {
            // Stratified batch: each batch is a fresh LHS design, so any
            // prefix of the run is near-uniform and long runs stay stratified.
            self.batch = latin_hypercube(
                self.batch_size,
                self.space.dims(),
                derive(self.seed, self.batch_no),
            );
            self.batch_no += 1;
            self.cursor = 0;
        }
        let u = &self.batch[self.cursor];
        self.cursor += 1;
        self.space.decode(u).expect("LHS points span the full space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anns::params::IndexType;

    #[test]
    fn proposes_diverse_index_types() {
        let mut t = RandomLhs::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            seen.insert(t.propose(&[]).index_type);
        }
        assert!(seen.len() >= 5, "LHS over the type dim must cover most types: {seen:?}");
        assert!(seen.contains(&IndexType::Flat) || seen.contains(&IndexType::AutoIndex));
    }

    #[test]
    fn deterministic_sequence() {
        let mut a = RandomLhs::new(9);
        let mut b = RandomLhs::new(9);
        for _ in 0..10 {
            assert_eq!(a.propose(&[]).summary(), b.propose(&[]).summary());
        }
    }

    #[test]
    fn topology_space_proposals_carry_shard_requests() {
        let mut t = RandomLhs::with_space(SpaceSpec::with_topology(8), 3);
        let mut counts = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let c = t.propose(&[]);
            counts.insert(c.shards.expect("topology space always requests a shape"));
        }
        assert!(counts.len() >= 3, "LHS must explore shard counts: {counts:?}");
        assert!(counts.iter().all(|s| (1..=8).contains(s)));
    }

    #[test]
    fn batches_differ() {
        let mut t = RandomLhs::new(9);
        let first: Vec<String> = (0..50).map(|_| t.propose(&[]).summary()).collect();
        let second: Vec<String> = (0..50).map(|_| t.propose(&[]).summary()).collect();
        assert_ne!(first, second);
    }
}
