// R2 positive: a hash collection in a determinism-path crate.
use std::collections::HashMap;

pub fn count(xs: &[u32]) -> usize {
    let mut m: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}
