// R4 clean: serial folds inside parallel map closures are fine, as are
// order-insensitive parallel terminals like max/min/count.
use rayon::prelude::*;

pub fn row_norms(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.par_iter().map(|r| r.iter().map(|x| x * x).sum::<f64>().sqrt()).collect()
}

pub fn longest(rows: &[Vec<f64>]) -> usize {
    rows.par_iter().map(|r| r.len()).max().unwrap_or(0)
}
