// R1 clean-by-annotation: both accepted spellings.
pub fn peek(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: emptiness checked on the line above, so index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

/// Reads without a bounds check.
///
/// # Safety
/// `xs` must be non-empty.
pub unsafe fn peek_unchecked(xs: &[f32]) -> f32 {
    // SAFETY: forwarded to the caller via the `# Safety` contract above.
    unsafe { *xs.get_unchecked(0) }
}
