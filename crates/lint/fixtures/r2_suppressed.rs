// R2 suppressed: justified membership-only use.
pub fn contains_any(xs: &[u32], probes: &[u32]) -> bool {
    // lint:allow(hash-collection): membership probes only; nothing iterates
    // the set, so hash order cannot reach the result.
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    probes.iter().any(|p| set.contains(p))
}
