// R1b: #[target_feature] outside the vecdata::kernel dispatch module.
#[target_feature(enable = "avx2")]
// SAFETY: requires avx2; fixture only.
pub unsafe fn dot8(a: &[f32; 8], b: &[f32; 8]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}
