// R3 positive: wall-clock reads in a determinism-path crate.
use std::time::{Instant, SystemTime};

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_secs_f64()
}
