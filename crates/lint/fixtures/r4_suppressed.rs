// R4 suppressed: justified order-stable reduction.
use rayon::prelude::*;

pub fn mean(xs: &[f64]) -> f64 {
    // lint:allow(par-float-fold): inputs are pre-rounded to f32 grid points,
    // so the reduction is exact in f64 and order cannot change the result.
    let total: f64 = xs.par_iter().map(|x| x * x).sum();
    total / xs.len() as f64
}
