// R3 clean: sim time from an event clock; a bare Instant type mention
// (no ::now) and string mentions must not fire.
use std::time::Instant;

pub struct EventClock {
    now_secs: f64,
}

impl EventClock {
    pub fn advance(&mut self, dt: f64) -> f64 {
        self.now_secs += dt;
        self.now_secs
    }
}

pub fn describe(_t: Instant) -> &'static str {
    "Instant::now only as text"
}
