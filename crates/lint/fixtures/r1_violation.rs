// R1 positive: unsafe without any SAFETY justification.
pub fn peek(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
