// R4 positive: float sum over a rayon parallel iterator.
use rayon::prelude::*;

pub fn mean(xs: &[f64]) -> f64 {
    let total: f64 = xs.par_iter().map(|x| x * x).sum();
    total / xs.len() as f64
}
