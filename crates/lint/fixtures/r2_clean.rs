// R2 clean: ordered collections only; string mentions are inert.
use std::collections::BTreeMap;

pub fn count(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0usize) += 1;
    }
    println!("not a HashMap: {}", "HashMap");
    m
}
