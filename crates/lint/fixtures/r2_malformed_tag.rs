// R2 negative-suppression: a tag with no justification must NOT suppress.
pub fn count(xs: &[u32]) -> usize {
    // lint:allow(hash-collection):
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    set.len()
}
