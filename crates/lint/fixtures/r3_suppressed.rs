// R3 suppressed: justified timing bookkeeping.
use std::time::Instant;

pub fn recommend_secs() -> f64 {
    // lint:allow(wall-clock): measures the tuner's own thinking time for
    // Table VI bookkeeping; never feeds simulated results.
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
