// R1 clean: no unsafe anywhere; mentions in strings/comments are inert.
pub fn describe() -> &'static str {
    // the word unsafe in a comment must not count as a site
    "unsafe is only a string here"
}
