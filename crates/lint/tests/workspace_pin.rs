//! Pinned workspace inventory: the real workspace must scan clean, and the
//! `unsafe` surface is frozen at exactly the audited counts. If new
//! `unsafe` lands without a `SAFETY:` justification — or anywhere outside
//! the two audited files — this test fails and the diff below must be
//! reviewed deliberately, not waved through.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_scans_clean() {
    let report = lint::scan_workspace(workspace_root()).expect("workspace scan");
    assert!(report.clean(), "unsuppressed lint findings in the workspace:\n{:#?}", report.findings);
    assert!(report.files_scanned > 50, "walker lost the workspace: {}", report.files_scanned);
}

#[test]
fn unsafe_inventory_is_pinned() {
    let report = lint::scan_workspace(workspace_root()).expect("workspace scan");

    // The audited unsafe surface: SIMD kernels behind the OnceLock dispatch
    // and the three affinity syscall wrappers. Every site documented.
    let expect = [("crates/bench/src/affinity.rs", 3usize), ("crates/vecdata/src/kernel.rs", 62)];
    for (file, sites) in expect {
        let inv = report
            .unsafe_inventory
            .get(file)
            .unwrap_or_else(|| panic!("missing inventory for {file}"));
        assert_eq!(inv.sites, sites, "{file}: unsafe site count drifted");
        assert_eq!(inv.documented, sites, "{file}: undocumented unsafe site");
    }
    assert_eq!(
        report.unsafe_inventory.len(),
        expect.len(),
        "unsafe appeared outside the audited files: {:?}",
        report.unsafe_inventory.keys().collect::<Vec<_>>()
    );
    assert_eq!(report.unsafe_sites(), 65);
    assert_eq!(report.unsafe_documented(), 65);
}

#[test]
fn suppression_set_is_pinned() {
    let report = lint::scan_workspace(workspace_root()).expect("workspace scan");
    let got: Vec<(&str, &str)> =
        report.suppressions.iter().map(|s| (s.rule.key(), s.file.as_str())).collect();
    let want = [
        ("r2_hash_collection", "crates/vecdata/src/ground_truth.rs"),
        ("r3_wall_clock", "crates/workload/src/tuner.rs"),
        ("r3_wall_clock", "crates/workload/src/tuner.rs"),
    ];
    assert_eq!(got, want, "lint:allow suppression set drifted — justify any new tag here");
}

#[test]
fn json_report_round_trips_key_fields() {
    let report = lint::scan_workspace(workspace_root()).expect("workspace scan");
    let json = report.to_json();
    for needle in [
        "\"schema\": \"vdtuner-lint-v1\"",
        "\"clean\": true",
        "\"r1_unsafe_safety\"",
        "\"r2_hash_collection\"",
        "\"r3_wall_clock\"",
        "\"r4_par_float_fold\"",
        "\"total_sites\": 65",
        "\"total_documented\": 65",
        "\"crates/vecdata/src/kernel.rs\": {\"sites\": 62, \"documented\": 62}",
    ] {
        assert!(json.contains(needle), "lint.json missing {needle}:\n{json}");
    }
}
