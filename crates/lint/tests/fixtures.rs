//! Fixture self-tests: every rule must demonstrably fire on its positive
//! fixture, stay quiet when suppressed/annotated, and stay quiet on clean
//! code. Fixtures live in `crates/lint/fixtures/` and are excluded from the
//! workspace walk — they exist to violate the rules.

use lint::rules::{scan_source, FileReport, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Scan a fixture as if it lived at `rel_path` (the path decides crate
/// scoping: determinism crates, bench exemption, dispatch module).
fn scan_as(rel_path: &str, name: &str) -> FileReport {
    scan_source(rel_path, &fixture(name))
}

const DET_PATH: &str = "crates/core/src/fixture.rs";
const BENCH_PATH: &str = "crates/bench/src/fixture.rs";

#[test]
fn r1_fires_on_undocumented_unsafe() {
    let r = scan_as(DET_PATH, "r1_violation.rs");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, Rule::UnsafeSafety);
    assert_eq!(r.unsafe_sites, 1);
    assert_eq!(r.unsafe_documented, 0);
}

#[test]
fn r1_accepts_safety_comment_and_safety_doc_section() {
    let r = scan_as(DET_PATH, "r1_documented.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.unsafe_sites, 3);
    assert_eq!(r.unsafe_documented, 3);
}

#[test]
fn r1_clean_counts_no_sites() {
    let r = scan_as(DET_PATH, "r1_clean.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.unsafe_sites, 0, "unsafe in strings/comments must not count");
}

#[test]
fn r1_target_feature_only_in_dispatch_module() {
    let outside = scan_as("crates/gp/src/fixture.rs", "r1_target_feature.rs");
    assert_eq!(outside.findings.len(), 1, "{:?}", outside.findings);
    assert_eq!(outside.findings[0].rule, Rule::UnsafeSafety);
    assert!(outside.findings[0].message.contains("target_feature"));

    let dispatch = scan_as("crates/vecdata/src/kernel.rs", "r1_target_feature.rs");
    assert!(dispatch.findings.is_empty(), "{:?}", dispatch.findings);
}

#[test]
fn r2_fires_on_hash_collections() {
    let r = scan_as(DET_PATH, "r2_violation.rs");
    assert!(!r.findings.is_empty());
    assert!(r.findings.iter().all(|f| f.rule == Rule::HashCollection), "{:?}", r.findings);
}

#[test]
fn r2_tag_with_rationale_suppresses() {
    let r = scan_as(DET_PATH, "r2_suppressed.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressions.len(), 1);
    assert_eq!(r.suppressions[0].rule, Rule::HashCollection);
    assert!(r.suppressions[0].reason.contains("membership"));
}

#[test]
fn r2_tag_without_rationale_does_not_suppress() {
    let r = scan_as(DET_PATH, "r2_malformed_tag.rs");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert!(r.suppressions.is_empty(), "an empty reason must never suppress");
}

#[test]
fn r2_clean_and_out_of_scope_stay_quiet() {
    let clean = scan_as(DET_PATH, "r2_clean.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);

    let bench = scan_as(BENCH_PATH, "r2_violation.rs");
    assert!(bench.findings.is_empty(), "bench is outside the determinism scope");
}

#[test]
fn r3_fires_on_wall_clock() {
    let r = scan_as(DET_PATH, "r3_violation.rs");
    // Three sites: the SystemTime import, Instant::now, SystemTime::now.
    assert_eq!(r.findings.len(), 3, "{:?}", r.findings);
    assert!(r.findings.iter().all(|f| f.rule == Rule::WallClock));
}

#[test]
fn r3_bench_is_exempt() {
    let r = scan_as(BENCH_PATH, "r3_violation.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn r3_tag_suppresses_and_clean_event_clock_passes() {
    let s = scan_as(DET_PATH, "r3_suppressed.rs");
    assert!(s.findings.is_empty(), "{:?}", s.findings);
    assert_eq!(s.suppressions.len(), 1);
    assert_eq!(s.suppressions[0].rule, Rule::WallClock);

    let c = scan_as(DET_PATH, "r3_clean.rs");
    assert!(c.findings.is_empty(), "bare Instant type mentions must not fire: {:?}", c.findings);
}

#[test]
fn r4_fires_on_parallel_float_sum() {
    let r = scan_as(DET_PATH, "r4_violation.rs");
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, Rule::ParFloatFold);
}

#[test]
fn r4_tag_suppresses_and_serial_folds_pass() {
    let s = scan_as(DET_PATH, "r4_suppressed.rs");
    assert!(s.findings.is_empty(), "{:?}", s.findings);
    assert_eq!(s.suppressions.len(), 1);
    assert_eq!(s.suppressions[0].rule, Rule::ParFloatFold);

    let c = scan_as(DET_PATH, "r4_clean.rs");
    assert!(c.findings.is_empty(), "serial folds inside par closures must pass: {:?}", c.findings);
}

#[test]
fn r4_mc_mean_blessing_is_path_and_name_dependent() {
    let src = "pub fn mc_mean(z: &[f64]) -> f64 {\n    \
               let t: f64 = z.par_iter().map(|x| x + 1.0).sum();\n    t\n}\n";
    let blessed = scan_source("crates/mobo/src/acquisition.rs", src);
    assert!(blessed.findings.is_empty(), "{:?}", blessed.findings);

    let elsewhere = scan_source("crates/mobo/src/optimizer.rs", src);
    assert_eq!(elsewhere.findings.len(), 1, "same code outside acquisition.rs must fire");

    let renamed = src.replace("mc_mean", "quick_mean");
    let wrong_fn = scan_source("crates/mobo/src/acquisition.rs", &renamed);
    assert_eq!(wrong_fn.findings.len(), 1, "non-mc_mean fns in acquisition.rs must fire");
}

#[test]
fn safety_comment_above_multiline_statement_is_seen() {
    // Mirrors bench/affinity.rs: the SAFETY comment sits above a `let`
    // whose `unsafe` block starts on a later line.
    let src = "pub fn f(x: i64) -> i64 {\n    \
               // SAFETY: raw syscall has no memory preconditions here.\n    \
               let ret =\n        unsafe { syscall(x) };\n    ret\n}\n";
    let r = scan_source(DET_PATH, src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.unsafe_documented, 1);
}

#[test]
fn wrong_tag_key_does_not_suppress_other_rules() {
    let src = "// lint:allow(wall-clock): wrong key for this rule\n\
               pub fn f() -> std::collections::HashMap<u32, u32> {\n    \
               std::collections::HashMap::new()\n}\n";
    let r = scan_source(DET_PATH, src);
    assert!(!r.findings.is_empty(), "a wall-clock tag must not suppress hash-collection");
    assert!(r.suppressions.is_empty());
}
