#![deny(unsafe_code)]
//! `vdtuner-lint` binary: scan the workspace, print findings, write
//! `results/lint.json`, exit nonzero on any unsuppressed violation.
//!
//! Usage: `cargo run -p lint --release [-- <workspace-root>]`. The root
//! defaults to the nearest ancestor of the current directory containing a
//! `Cargo.toml` with a `[workspace]` table (so it works from crate
//! subdirectories too).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("vdtuner-lint: no workspace root found (pass one explicitly)");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vdtuner-lint: scan failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let results = root.join("results");
    let json_path = results.join("lint.json");
    if let Err(e) =
        std::fs::create_dir_all(&results).and_then(|_| std::fs::write(&json_path, report.to_json()))
    {
        eprintln!("vdtuner-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }

    println!(
        "vdtuner-lint: {} files, {} unsafe sites ({} documented), {} suppressions -> {}",
        report.files_scanned,
        report.unsafe_sites(),
        report.unsafe_documented(),
        report.suppressions.len(),
        rel(&json_path, &root),
    );

    if report.clean() {
        println!("vdtuner-lint: clean (0 findings)");
        ExitCode::SUCCESS
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule.key(), f.message);
        }
        println!("vdtuner-lint: {} unsuppressed finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

fn rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}
