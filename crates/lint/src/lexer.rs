//! A minimal hand-rolled Rust lexer — just enough surface syntax to drive
//! the rule pass: identifiers, punctuation, literals and comments, each
//! tagged with its 1-based source line.
//!
//! The rules in [`crate::rules`] only ever look at identifier *tokens*, so
//! the lexer's one hard job is making sure text inside string/char literals
//! and comments can never masquerade as code (`"HashMap"` in a string, or
//! `Instant::now` in a doc comment, must not fire a rule). Everything it
//! does not need — keyword classification, number grammar subtleties,
//! operator fusion — is deliberately left out.

/// One code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Code token kinds. Comments are *not* tokens — they are collected
/// separately in [`Lexed::comments`] so rules can reason about them as
/// annotations rather than code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `par_iter`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `;`, `{`, `#`, ...).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number. The
    /// contents are irrelevant to every rule, so they are not kept.
    Literal,
}

/// One comment (line, block, or doc), with the line it *starts* on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The lexer output: the code token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src`. Never fails: unterminated literals/comments simply run to end
/// of input (the workspace only feeds it `rustc`-clean sources anyway).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;

    // Consume a quoted run starting at the opening `"` (index `i`),
    // honoring `\` escapes; returns the index just past the closing quote.
    let scan_string = |chars: &[char], mut i: usize, line: &mut usize| -> usize {
        i += 1; // opening quote
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    // Count the escaped char too: `\` at end of line is a
                    // line-continuation escape swallowing the newline.
                    if chars.get(i + 1) == Some(&'\n') {
                        *line += 1;
                    }
                    i += 2;
                }
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                '"' => return i + 1,
                _ => i += 1,
            }
        }
        i
    };

    // Consume a raw string whose `r` (or `br`) prefix ends at index `i`
    // pointing at the first `#` or `"`.
    let scan_raw_string = |chars: &[char], mut i: usize, line: &mut usize| -> usize {
        let mut hashes = 0usize;
        while i < chars.len() && chars[i] == '#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < chars.len() {
            if chars[i] == '\n' {
                *line += 1;
                i += 1;
            } else if chars[i] == '"'
                && chars[i + 1..].iter().take(hashes).filter(|c| **c == '#').count() == hashes
            {
                return i + 1 + hashes;
            } else {
                i += 1;
            }
        }
        i
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment { line, text: chars[start..i].iter().collect() });
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments
                    .push(Comment { line: start_line, text: chars[start..i].iter().collect() });
            }
            '"' => {
                let l = line;
                i = scan_string(&chars, i, &mut line);
                out.tokens.push(Tok { kind: TokKind::Literal, line: l });
            }
            '\'' => {
                // Lifetime (`'a`), loop label (`'outer:`) or char literal
                // (`'x'`, `'\n'`). A quote after the ident run means char.
                let l = line;
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to the closing quote.
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                } else if chars.get(i + 1).is_some_and(|c| is_ident_continue(*c)) {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        // 'x' — a char literal.
                        i = j + 1;
                        out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                    } else {
                        // 'label / 'lifetime — treat as punctuation + ident.
                        out.tokens.push(Tok { kind: TokKind::Punct('\''), line: l });
                        i += 1;
                    }
                } else {
                    out.tokens.push(Tok { kind: TokKind::Punct('\''), line: l });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let l = line;
                // Digits, underscores, radix/type-suffix letters; a `.`
                // continues the number only when a digit follows (so
                // `tuple.0.sum()` cannot swallow `.sum`).
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    let digit_next = chars.get(i + 1).is_some_and(|d| d.is_ascii_digit());
                    let continues = c.is_ascii_alphanumeric()
                        || c == '_'
                        || (c == '.' && digit_next)
                        || ((c == '+' || c == '-')
                            && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
                            && digit_next);
                    if !continues {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Tok { kind: TokKind::Literal, line: l });
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes first: r"", r#""#, b"", br"", b''.
                // (`r#ident` raw identifiers fall through to the ident arm:
                // their `#` run is not followed by a quote.)
                let next = chars.get(i + 1).copied();
                let raw_quoted = |from: usize| {
                    let h = chars[from..].iter().take_while(|c| **c == '#').count();
                    chars.get(from + h) == Some(&'"')
                };
                if c == 'r' && raw_quoted(i + 1) {
                    let l = line;
                    i = scan_raw_string(&chars, i + 1, &mut line);
                    out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                } else if c == 'b' && next == Some('"') {
                    let l = line;
                    i = scan_string(&chars, i + 1, &mut line);
                    out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                } else if c == 'b' && next == Some('\'') {
                    let l = line;
                    i += 2;
                    if chars.get(i) == Some(&'\\') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                } else if c == 'b' && next == Some('r') && raw_quoted(i + 2) {
                    let l = line;
                    i = scan_raw_string(&chars, i + 2, &mut line);
                    out.tokens.push(Tok { kind: TokKind::Literal, line: l });
                } else {
                    let start = i;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    out.tokens
                        .push(Tok { kind: TokKind::Ident(chars[start..i].iter().collect()), line });
                }
            }
            _ => {
                out.tokens.push(Tok { kind: TokKind::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in /* a nested */ block */
            let a = "HashMap"; // trailing SystemTime
            let b = r#"Instant"#;
            let c = b"unsafe";
            let d = 'x';
            let e: &'static str = "par_iter";
        "##;
        let ids = idents(src);
        for banned in ["HashMap", "Instant", "SystemTime", "unsafe", "par_iter"] {
            assert!(!ids.contains(&banned.to_string()), "{banned} leaked from a literal");
        }
        assert!(ids.contains(&"static".to_string()), "lifetime ident must survive");
    }

    #[test]
    fn comment_lines_are_recorded() {
        let src = "let a = 1;\n// SAFETY: fine\nlet b = 2; // tail\n";
        let lx = lex(src);
        let lines: Vec<usize> = lx.comments.iter().map(|c| c.line).collect();
        assert_eq!(lines, vec![2, 3]);
        assert!(lx.comments[0].text.contains("SAFETY"));
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        let src = "let a = x.0.sum(); let b = 1.0e-5f32.mul_add(1.0, 2.0);";
        let ids = idents(src);
        assert!(ids.contains(&"sum".to_string()));
        assert!(ids.contains(&"mul_add".to_string()));
    }

    #[test]
    fn lines_advance_through_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet unsafe_marker = 3;";
        let lx = lex(src);
        let last = lx.tokens.last().unwrap();
        assert_eq!(last.line, 3, "line counting must survive multi-line strings");
    }

    #[test]
    fn char_vs_lifetime_disambiguation() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'q'; let d = '\\n'; }");
        assert!(ids.contains(&"a".to_string()));
        assert!(!ids.contains(&"q".to_string()));
    }
}
