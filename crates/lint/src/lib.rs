#![deny(unsafe_code)]
//! `vdtuner-lint`: an offline workspace auditor that turns the repo's
//! determinism and unsafe contracts into enforced rules.
//!
//! The workspace maintains three invariants by hand that neither rustc nor
//! clippy can check:
//!
//! 1. **bit-identical parallel replay** — every parallel path reduces in a
//!    fixed order, so reruns are bit-identical to serial;
//! 2. **wall-clock-free simulation** — sim time flows from the event clock,
//!    never from `Instant::now`;
//! 3. **runtime-guarded SIMD `unsafe`** — every `#[target_feature]` kernel
//!    is reached only through the `OnceLock` dispatch in `vecdata::kernel`
//!    after CPUID detection, and every `unsafe` site carries a written
//!    justification.
//!
//! [`rules`] encodes them as four rules (R1–R4) over a hand-rolled token
//! stream ([`lexer`] — no dependencies; the build environment is
//! vendored-only). [`scan_workspace`] walks every `crates/*/{src,tests,
//! benches}` and root `src`/`tests`/`examples` Rust file, and the
//! `vdtuner-lint` binary emits `results/lint.json` and exits nonzero on any
//! unsuppressed finding. See `crates/bench/src/report.rs` for the JSON
//! schema, and ARCHITECTURE.md ("Determinism contracts, enforced") for the
//! invariant-to-rule map.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use rules::{scan_source, FileReport, Finding, Rule, Suppression};

/// Per-file unsafe inventory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeInventory {
    pub sites: usize,
    pub documented: usize,
}

/// Aggregate scan result for the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    /// `rel_path -> inventory`, only for files with at least one `unsafe`.
    pub unsafe_inventory: BTreeMap<String, UnsafeInventory>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when no unsuppressed finding exists anywhere.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Total `unsafe` sites across the workspace.
    pub fn unsafe_sites(&self) -> usize {
        self.unsafe_inventory.values().map(|v| v.sites).sum()
    }

    /// Total documented `unsafe` sites across the workspace.
    pub fn unsafe_documented(&self) -> usize {
        self.unsafe_inventory.values().map(|v| v.documented).sum()
    }

    fn absorb(&mut self, rel_path: &str, file: FileReport) {
        self.files_scanned += 1;
        self.findings.extend(file.findings);
        self.suppressions.extend(file.suppressions);
        if file.unsafe_sites > 0 {
            self.unsafe_inventory.insert(
                rel_path.to_string(),
                UnsafeInventory { sites: file.unsafe_sites, documented: file.unsafe_documented },
            );
        }
    }

    /// Render the report as the `results/lint.json` document (schema
    /// documented in `crates/bench/src/report.rs`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"vdtuner-lint-v1\",\n");
        push_kv(&mut s, 1, "clean", &self.clean().to_string());
        push_kv(&mut s, 1, "files_scanned", &self.files_scanned.to_string());

        s.push_str("  \"rules\": {\n");
        for (ri, rule) in Rule::ALL.iter().enumerate() {
            let findings: Vec<&Finding> =
                self.findings.iter().filter(|f| f.rule == *rule).collect();
            s.push_str(&format!("    {}: {{\n", json_str(rule.key())));
            s.push_str(&format!("      \"description\": {},\n", json_str(rule.description())));
            s.push_str(&format!(
                "      \"findings\": [{}\n",
                if findings.is_empty() { "]" } else { "" }
            ));
            for (i, f) in findings.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message),
                    if i + 1 == findings.len() { "" } else { "," }
                ));
            }
            if !findings.is_empty() {
                s.push_str("      ]\n");
            }
            s.push_str(&format!("    }}{}\n", if ri + 1 == Rule::ALL.len() { "" } else { "," }));
        }
        s.push_str("  },\n");

        s.push_str(&format!(
            "  \"suppressions\": [{}\n",
            if self.suppressions.is_empty() { "]," } else { "" }
        ));
        for (i, sp) in self.suppressions.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(sp.rule.key()),
                json_str(&sp.file),
                sp.line,
                json_str(&sp.reason),
                if i + 1 == self.suppressions.len() { "" } else { "," }
            ));
        }
        if !self.suppressions.is_empty() {
            s.push_str("  ],\n");
        }

        s.push_str("  \"unsafe_inventory\": {\n");
        push_kv(&mut s, 2, "total_sites", &self.unsafe_sites().to_string());
        push_kv(&mut s, 2, "total_documented", &self.unsafe_documented().to_string());
        s.push_str("    \"files\": {\n");
        let n = self.unsafe_inventory.len();
        for (i, (path, inv)) in self.unsafe_inventory.iter().enumerate() {
            s.push_str(&format!(
                "      {}: {{\"sites\": {}, \"documented\": {}}}{}\n",
                json_str(path),
                inv.sites,
                inv.documented,
                if i + 1 == n { "" } else { "," }
            ));
        }
        s.push_str("    }\n  }\n}\n");
        s
    }
}

fn push_kv(s: &mut String, indent: usize, key: &str, raw_value: &str) {
    s.push_str(&format!("{}{}: {},\n", "  ".repeat(indent), json_str(key), raw_value));
}

/// RFC 8259 string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directories scanned inside each crate (and at the workspace root).
const SOURCE_DIRS: &[&str] = &["src", "tests", "benches", "examples"];

/// Walk the workspace rooted at `root` and scan every first-party Rust
/// source. `vendor/`, `target/` and the lint fixtures themselves are
/// excluded; fixtures exist to *violate* the rules.
pub fn scan_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in SOURCE_DIRS {
        collect_rs(&root.join(dir), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            for dir in SOURCE_DIRS {
                collect_rs(&crate_dir.join(dir), &mut files)?;
            }
        }
    }
    files.sort();

    let mut report = WorkspaceReport::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        report.absorb(&rel, scan_source(&rel, &src));
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.suppressions.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collect `*.rs` under `dir` (sorted, so reports are stable).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
