//! The four workspace rules (R1–R4) over the lexed token stream.
//!
//! Every rule works the same way: find a *trigger* token, then look for an
//! *annotation* in the trigger's statement window — the comments between
//! the previous statement boundary (`;`, `{` or `}`) and the trigger's
//! line. R1's annotation is a `SAFETY:` comment (or a `# Safety` rustdoc
//! section); R2–R4 accept an explicit suppression tag:
//!
//! ```text
//! // lint:allow(<rule>): <non-empty justification>
//! ```
//!
//! with rule keys `hash-collection`, `wall-clock` and `par-float-fold`.
//! A tag with an empty justification never suppresses — the reviewer-facing
//! *why* is the point of the tag.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// The four enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: every `unsafe` block/fn carries a `SAFETY:` justification, and
    /// `#[target_feature]` lives only in the `vecdata::kernel` dispatch
    /// module.
    UnsafeSafety,
    /// R2: `HashMap`/`HashSet` are banned in determinism-path crates
    /// unless justified with `lint:allow(hash-collection)`.
    HashCollection,
    /// R3: `Instant::now` / `SystemTime` are banned outside `bench` unless
    /// justified with `lint:allow(wall-clock)`.
    WallClock,
    /// R4: `.sum()` / `.fold()` / `.reduce()` chained on a rayon parallel
    /// iterator is banned outside the blessed order-stable primitives
    /// (the `mc_mean` family) unless justified with
    /// `lint:allow(par-float-fold)`.
    ParFloatFold,
}

impl Rule {
    /// Stable machine-readable key used in `results/lint.json`.
    pub fn key(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "r1_unsafe_safety",
            Rule::HashCollection => "r2_hash_collection",
            Rule::WallClock => "r3_wall_clock",
            Rule::ParFloatFold => "r4_par_float_fold",
        }
    }

    /// The `lint:allow(...)` tag name, for the rules that accept one.
    pub fn tag(self) -> Option<&'static str> {
        match self {
            Rule::UnsafeSafety => None,
            Rule::HashCollection => Some("hash-collection"),
            Rule::WallClock => Some("wall-clock"),
            Rule::ParFloatFold => Some("par-float-fold"),
        }
    }

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => {
                "unsafe blocks/fns must carry a SAFETY: justification; \
                 #[target_feature] only in the vecdata::kernel dispatch module"
            }
            Rule::HashCollection => {
                "HashMap/HashSet banned in determinism-path crates unless \
                 tagged lint:allow(hash-collection) with a rationale"
            }
            Rule::WallClock => {
                "Instant::now/SystemTime banned outside bench; sim time must \
                 flow from the event clock (tag: lint:allow(wall-clock))"
            }
            Rule::ParFloatFold => {
                "sum/fold/reduce on rayon parallel iterators banned outside \
                 the mc_mean family (tag: lint:allow(par-float-fold))"
            }
        }
    }

    pub const ALL: [Rule; 4] =
        [Rule::UnsafeSafety, Rule::HashCollection, Rule::WallClock, Rule::ParFloatFold];
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// One accepted (finding-suppressing) `lint:allow` tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: Rule,
    pub file: String,
    /// Line of the suppressed trigger (not of the tag comment).
    pub line: usize,
    pub reason: String,
}

/// Scan result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
    /// Number of `unsafe` tokens (blocks + fns) in the file.
    pub unsafe_sites: usize,
    /// How many of them carry a `SAFETY:` / `# Safety` justification.
    pub unsafe_documented: usize,
}

/// Crates whose results depend on iteration/reduction order: the whole
/// tuning pipeline plus the facade. `bench` is excluded (reporting and
/// calibration live there, and wall-clock/Hash iteration cannot reach
/// tuning results), as is the auditor itself — which nevertheless keeps to
/// `BTreeMap` so its own reports are stably ordered.
const DETERMINISM_CRATES: &[&str] =
    &["core", "gp", "mobo", "anns", "vdms", "workload", "baselines", "vecdata", "vdtuner", "lint"];

/// The only file allowed to declare `#[target_feature]` functions: the
/// OnceLock dispatch module. Everything else must go through
/// `vecdata::kernel::active()` so detection-before-call is structural.
const DISPATCH_MODULE: &str = "crates/vecdata/src/kernel.rs";

/// The blessed order-stable parallel-reduction primitive: `mc_mean` (and
/// its `mc_mean_*` variants, should they grow) in mobo's acquisition
/// module. Everything else must route through it.
const BLESSED_PAR_FOLD_FILE: &str = "crates/mobo/src/acquisition.rs";
const BLESSED_PAR_FOLD_FN_PREFIX: &str = "mc_mean";

/// Rayon adapters that start a parallel iterator chain.
const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_exact",
    "par_windows",
    "par_split",
];

/// Order-sensitive terminal reductions on a parallel chain.
const PAR_FOLDS: &[&str] = &["sum", "fold", "reduce", "product"];

/// Crate a workspace-relative path belongs to (`crates/<name>/...`, or the
/// root facade `vdtuner` for `src/`, `tests/`, `examples/`).
pub fn crate_of(rel_path: &str) -> &str {
    let rel = rel_path.replace('\\', "/");
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(end) = rest.find('/') {
            // Safe to slice `rel_path` with the same offsets: the replace
            // above only ever substitutes single bytes.
            return &rel_path[7..7 + end];
        }
    }
    "vdtuner"
}

fn in_determinism_scope(rel_path: &str) -> bool {
    DETERMINISM_CRATES.contains(&crate_of(rel_path))
}

fn wall_clock_exempt(rel_path: &str) -> bool {
    crate_of(rel_path) == "bench"
}

/// Parse `lint:allow(<tag>): <reason>` out of a comment, returning the tag
/// and the trimmed reason (which may be empty — the caller rejects that).
fn parse_tag(text: &str) -> Option<(&str, &str)> {
    let at = text.find("lint:allow(")?;
    let rest = &text[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let tag = &rest[..close];
    let after = rest[close + 1..].strip_prefix(':').unwrap_or("");
    Some((tag, after.trim()))
}

struct FileScanner<'a> {
    rel_path: &'a str,
    tokens: &'a [Tok],
    comments: &'a [Comment],
    report: FileReport,
}

impl<'a> FileScanner<'a> {
    /// Line of the statement boundary (`;`, `{`, `}`) nearest before token
    /// `k`, or 1 when the token opens the file.
    fn boundary_line(&self, k: usize) -> usize {
        self.tokens[..k]
            .iter()
            .rev()
            .find(|t| {
                matches!(t.kind, TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}'))
            })
            .map_or(1, |t| t.line)
    }

    /// All comments in the statement window `[boundary_line(k), line]`.
    fn window(&self, k: usize, line: usize) -> impl Iterator<Item = &Comment> {
        let lo = self.boundary_line(k);
        self.comments.iter().filter(move |c| c.line >= lo && c.line <= line)
    }

    /// True when the statement window documents safety (`SAFETY:` comment
    /// or `# Safety` rustdoc section).
    fn has_safety(&self, k: usize, line: usize) -> bool {
        self.window(k, line).any(|c| c.text.contains("SAFETY") || c.text.contains("# Safety"))
    }

    /// Check the statement window for a valid suppression tag for `rule`;
    /// record and return true when found.
    fn suppressed(&mut self, rule: Rule, k: usize, line: usize) -> bool {
        let Some(want) = rule.tag() else { return false };
        let hit = self.window(k, line).find_map(|c| match parse_tag(&c.text) {
            Some((tag, reason)) if tag == want && !reason.is_empty() => Some(reason.to_string()),
            _ => None,
        });
        match hit {
            Some(reason) => {
                self.report.suppressions.push(Suppression {
                    rule,
                    file: self.rel_path.to_string(),
                    line,
                    reason,
                });
                true
            }
            None => false,
        }
    }

    fn finding(&mut self, rule: Rule, line: usize, message: String) {
        // One finding per (rule, line): `HashMap::new()` on a line already
        // flagged for its type mention would otherwise double-report.
        if self.report.findings.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        self.report.findings.push(Finding { rule, file: self.rel_path.to_string(), line, message });
    }

    fn ident_at(&self, k: usize) -> Option<&str> {
        match &self.tokens.get(k)?.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn punct_at(&self, k: usize, c: char) -> bool {
        matches!(self.tokens.get(k), Some(Tok { kind: TokKind::Punct(p), .. }) if *p == c)
    }

    /// R4 helper: from the adapter at token `k`, scan the rest of the
    /// statement (until `;` at the adapter's paren depth) for a direct
    /// `.sum(` / `.fold(` / `.reduce(` on the chain — i.e. at the same
    /// paren depth, so serial reductions inside closure bodies don't fire.
    fn par_chain_fold(&self, k: usize) -> Option<(usize, String)> {
        let mut depth = 0i32;
        let mut j = k + 1;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    if depth == 0 && matches!(self.tokens[j].kind, TokKind::Punct(')')) {
                        // Closing the call the adapter itself sits in
                        // (e.g. `f(xs.par_iter().map(..).sum())`): the
                        // chain cannot continue past it at this depth.
                        // Keep scanning — depth goes negative and the
                        // `;`-check below still terminates us sanely.
                    }
                    depth -= 1;
                }
                TokKind::Punct(';') if depth <= 0 => return None,
                TokKind::Punct('.') if depth == 0 => {
                    if let Some(name) = self.ident_at(j + 1) {
                        if PAR_FOLDS.contains(&name) {
                            return Some((self.tokens[j + 1].line, name.to_string()));
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    fn run(&mut self) {
        let mut current_fn = String::new();
        for k in 0..self.tokens.len() {
            let line = self.tokens[k].line;
            let Some(ident) = self.ident_at(k) else { continue };
            match ident {
                "fn" => {
                    if let Some(name) = self.ident_at(k + 1) {
                        current_fn = name.to_string();
                    }
                }
                // R1a: unsafe blocks/fns need a SAFETY justification.
                "unsafe" => {
                    self.report.unsafe_sites += 1;
                    if self.has_safety(k, line) {
                        self.report.unsafe_documented += 1;
                    } else {
                        self.finding(
                            Rule::UnsafeSafety,
                            line,
                            "`unsafe` without a `// SAFETY:` (or `# Safety`) justification"
                                .to_string(),
                        );
                    }
                }
                // R1b: #[target_feature] only in the dispatch module.
                "target_feature"
                    if self.punct_at(k.wrapping_sub(1), '[')
                        && self.punct_at(k.wrapping_sub(2), '#')
                        && self.rel_path != DISPATCH_MODULE =>
                {
                    self.finding(
                        Rule::UnsafeSafety,
                        line,
                        format!(
                            "#[target_feature] outside the dispatch module \
                             ({DISPATCH_MODULE}); route through vecdata::kernel::active()"
                        ),
                    );
                }
                // R2: hash collections in determinism-path crates.
                "HashMap" | "HashSet" if in_determinism_scope(self.rel_path) => {
                    let which = ident.to_string();
                    if !self.suppressed(Rule::HashCollection, k, line) {
                        self.finding(
                            Rule::HashCollection,
                            line,
                            format!(
                                "{which} in a determinism-path crate: iteration order is \
                                 seed-dependent; use BTreeMap/BTreeSet or justify with \
                                 lint:allow(hash-collection)"
                            ),
                        );
                    }
                }
                // R3: wall-clock reads outside bench.
                "Instant"
                    if self.punct_at(k + 1, ':')
                        && self.punct_at(k + 2, ':')
                        && self.ident_at(k + 3) == Some("now")
                        && !wall_clock_exempt(self.rel_path) =>
                {
                    let suppressed = self.suppressed(Rule::WallClock, k, line);
                    if !suppressed {
                        self.finding(
                            Rule::WallClock,
                            line,
                            "Instant::now outside bench: sim time must flow from the \
                             event clock (justify real timing with lint:allow(wall-clock))"
                                .to_string(),
                        );
                    }
                }
                "SystemTime" if !wall_clock_exempt(self.rel_path) => {
                    let suppressed = self.suppressed(Rule::WallClock, k, line);
                    if !suppressed {
                        self.finding(
                            Rule::WallClock,
                            line,
                            "SystemTime outside bench: wall-clock must not reach \
                             simulated results (justify with lint:allow(wall-clock))"
                                .to_string(),
                        );
                    }
                }
                // R4: order-sensitive folds on parallel iterators.
                _ if PAR_ADAPTERS.contains(&ident) && in_determinism_scope(self.rel_path) => {
                    let blessed = self.rel_path == BLESSED_PAR_FOLD_FILE
                        && current_fn.starts_with(BLESSED_PAR_FOLD_FN_PREFIX);
                    let adapter = ident.to_string();
                    if let Some((fold_line, fold)) = self.par_chain_fold(k) {
                        if !blessed && !self.suppressed(Rule::ParFloatFold, k, fold_line) {
                            self.finding(
                                Rule::ParFloatFold,
                                fold_line,
                                format!(
                                    ".{fold}() on a {adapter}() chain: parallel float \
                                     reduction order is nondeterministic; route through \
                                     mobo::mc_mean or justify with lint:allow(par-float-fold)"
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Scan one source file given its workspace-relative path (the path decides
/// which crate-scoped rules apply).
pub fn scan_source(rel_path: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let mut scanner = FileScanner {
        rel_path,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        report: FileReport::default(),
    };
    scanner.run();
    let mut report = scanner.report;
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report
}
