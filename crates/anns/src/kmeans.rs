//! Lloyd's k-means with k-means++ seeding, used by every IVF-family index.
//!
//! Training runs on a bounded sample (like FAISS/Milvus, which cap training
//! points per centroid) so index build time stays proportional to `nlist`
//! rather than the segment size.

use crate::cost::BuildStats;
use rand::Rng;
use vecdata::distance::l2_sq;
use vecdata::kernel;
use vecdata::rng::rng;

/// Result of k-means training: `k` centroids in a flat row-major buffer.
#[derive(Debug, Clone)]
pub struct KMeans {
    pub k: usize,
    pub dim: usize,
    pub centroids: Vec<f32>,
}

/// Maximum training points per centroid (FAISS uses 256; we use fewer to
/// keep scaled experiments fast without changing the partition geometry).
const TRAIN_POINTS_PER_CENTROID: usize = 64;
/// Lloyd iterations; IVF quality saturates quickly on our data sizes.
const LLOYD_ITERS: usize = 6;

impl KMeans {
    /// Train on (a sample of) `data`. `data.len()` must be a multiple of `dim`.
    ///
    /// `k` is clamped to the number of points. Deterministic given `seed`.
    pub fn train(data: &[f32], dim: usize, k: usize, seed: u64, stats: &mut BuildStats) -> KMeans {
        assert!(dim > 0 && data.len().is_multiple_of(dim));
        let n = data.len() / dim;
        let k = k.max(1).min(n.max(1));
        if n == 0 {
            return KMeans { k: 0, dim, centroids: Vec::new() };
        }

        let mut r = rng(seed);
        // Bounded training sample.
        let sample_target = (k * TRAIN_POINTS_PER_CENTROID).min(n);
        let sample: Vec<usize> = if sample_target == n {
            (0..n).collect()
        } else {
            // Floyd's sampling would be fancier; a simple stride+jitter pick
            // is deterministic and spreads across the segment.
            let stride = n as f64 / sample_target as f64;
            (0..sample_target)
                .map(|i| {
                    let base = (i as f64 * stride) as usize;
                    (base + r.gen_range(0..stride.max(1.0) as usize + 1)).min(n - 1)
                })
                .collect()
        };
        let s = sample.len();

        // k-means++ seeding on the sample.
        let mut centroids = vec![0.0f32; k * dim];
        let first = sample[r.gen_range(0..s)];
        centroids[..dim].copy_from_slice(&data[first * dim..(first + 1) * dim]);
        let mut min_d2: Vec<f32> = sample
            .iter()
            .map(|&i| l2_sq(&data[i * dim..(i + 1) * dim], &centroids[..dim]))
            .collect();
        stats.train_dims += (s * dim) as u64;
        for c in 1..k {
            let total: f64 = min_d2.iter().map(|&d| d as f64).sum();
            let chosen = if total <= 0.0 {
                sample[r.gen_range(0..s)]
            } else {
                let mut target = r.gen::<f64>() * total;
                let mut pick = s - 1;
                for (j, &d) in min_d2.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        pick = j;
                        break;
                    }
                }
                sample[pick]
            };
            let dst = &mut centroids[c * dim..(c + 1) * dim];
            dst.copy_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
            // Update min distances.
            let dst = &centroids[c * dim..(c + 1) * dim];
            for (j, &i) in sample.iter().enumerate() {
                let d = l2_sq(&data[i * dim..(i + 1) * dim], dst);
                if d < min_d2[j] {
                    min_d2[j] = d;
                }
            }
            stats.train_dims += (s * dim) as u64;
        }

        // Lloyd iterations on the sample. Assignment scores each point
        // against the contiguous centroid block through the dispatched
        // kernel; the strict-< argmin over identical distances keeps
        // assignments bit-identical to the old per-centroid loop.
        let mut assign = vec![0usize; s];
        let mut counts = vec![0usize; k];
        let mut sums = vec![0.0f32; k * dim];
        let kern = kernel::active();
        let mut scores = Vec::with_capacity(k);
        for _ in 0..LLOYD_ITERS {
            for (j, &i) in sample.iter().enumerate() {
                let v = &data[i * dim..(i + 1) * dim];
                kern.l2_sq_block(v, &centroids, dim, &mut scores);
                assign[j] = argmin(&scores);
            }
            stats.train_dims += (s * k * dim) as u64;
            counts.iter_mut().for_each(|c| *c = 0);
            sums.iter_mut().for_each(|x| *x = 0.0);
            for (j, &i) in sample.iter().enumerate() {
                let c = assign[j];
                counts[c] += 1;
                let v = &data[i * dim..(i + 1) * dim];
                let dst = &mut sums[c * dim..(c + 1) * dim];
                for d in 0..dim {
                    dst[d] += v[d];
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    let dst = &mut centroids[c * dim..(c + 1) * dim];
                    for d in 0..dim {
                        dst[d] = sums[c * dim + d] * inv;
                    }
                } else {
                    // Re-seed an empty cluster at a random sample point to
                    // keep all `k` partitions useful.
                    let i = sample[r.gen_range(0..s)];
                    centroids[c * dim..(c + 1) * dim]
                        .copy_from_slice(&data[i * dim..(i + 1) * dim]);
                }
            }
        }

        KMeans { k, dim, centroids }
    }

    /// Centroid `c` as a slice.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v` (block-scored through the
    /// dispatched kernel; 0 when `k == 0`, like the old loop).
    #[inline]
    pub fn nearest(&self, v: &[f32]) -> usize {
        let mut scores = Vec::with_capacity(self.k);
        kernel::active().l2_sq_block(v, &self.centroids, self.dim, &mut scores);
        argmin(&scores)
    }

    /// Indices of the `p` nearest centroids (sorted by ascending distance),
    /// recording the scan cost.
    pub fn nearest_n(&self, v: &[f32], p: usize, cost_dims: &mut u64) -> Vec<usize> {
        let mut scores = Vec::with_capacity(self.k);
        kernel::active().l2_sq_block(v, &self.centroids, self.dim, &mut scores);
        let mut ds: Vec<(f32, usize)> = scores.into_iter().zip(0..self.k).collect();
        *cost_dims += (self.k * self.dim) as u64;
        let p = p.min(self.k);
        ds.select_nth_unstable_by(p.saturating_sub(1), |a, b| a.0.total_cmp(&b.0));
        let mut top: Vec<(f32, usize)> = ds[..p].to_vec();
        top.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        top.into_iter().map(|(_, c)| c).collect()
    }
}

/// First index of the smallest score (strict `<`, so ties keep the earliest
/// index — same as the argmin loops this replaced). Returns 0 when empty.
#[inline]
pub(crate) fn argmin(scores: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, &d) in scores.iter().enumerate() {
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<f32>, usize) {
        // Three well-separated 2-D blobs.
        let mut data = Vec::new();
        let mut r = rng(1);
        for center in [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..50 {
                data.push(center.0 + r.gen::<f32>() * 0.5);
                data.push(center.1 + r.gen::<f32>() * 0.5);
            }
        }
        (data, 2)
    }

    #[test]
    fn separates_blobs() {
        let (data, dim) = toy_data();
        let mut stats = BuildStats::default();
        let km = KMeans::train(&data, dim, 3, 7, &mut stats);
        assert_eq!(km.k, 3);
        // Every centroid should be close to one of the true blob centers.
        for c in 0..3 {
            let cen = km.centroid(c);
            let ok = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)]
                .iter()
                .any(|t| (cen[0] - t.0).abs() < 2.0 && (cen[1] - t.1).abs() < 2.0);
            assert!(ok, "centroid {cen:?} not near any blob");
        }
        assert!(stats.train_dims > 0);
    }

    #[test]
    fn deterministic() {
        let (data, dim) = toy_data();
        let mut s1 = BuildStats::default();
        let mut s2 = BuildStats::default();
        let a = KMeans::train(&data, dim, 4, 42, &mut s1);
        let b = KMeans::train(&data, dim, 4, 42, &mut s2);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(s1.train_dims, s2.train_dims);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![0.0f32; 2 * 3]; // 3 points of dim 2
        let mut stats = BuildStats::default();
        let km = KMeans::train(&data, 2, 100, 0, &mut stats);
        assert_eq!(km.k, 3);
    }

    #[test]
    fn nearest_assigns_to_own_blob() {
        let (data, dim) = toy_data();
        let mut stats = BuildStats::default();
        let km = KMeans::train(&data, dim, 3, 7, &mut stats);
        let q = [10.1f32, 9.9];
        let c = km.nearest(&q);
        let cen = km.centroid(c);
        assert!((cen[0] - 10.0).abs() < 2.0 && (cen[1] - 10.0).abs() < 2.0);
    }

    #[test]
    fn nearest_n_sorted_and_counts_cost() {
        let (data, dim) = toy_data();
        let mut stats = BuildStats::default();
        let km = KMeans::train(&data, dim, 3, 7, &mut stats);
        let mut cost = 0u64;
        let order = km.nearest_n(&[0.0, 0.0], 3, &mut cost);
        assert_eq!(order.len(), 3);
        assert_eq!(cost, (3 * dim) as u64);
        // Distances must be ascending.
        let d: Vec<f32> = order.iter().map(|&c| l2_sq(&[0.0, 0.0], km.centroid(c))).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_data() {
        let mut stats = BuildStats::default();
        let km = KMeans::train(&[], 4, 5, 0, &mut stats);
        assert_eq!(km.k, 0);
    }
}
