//! Deterministic work counters.
//!
//! Indexes count the operations they perform instead of measuring wall-clock
//! time. The VDMS cost model weighs these counters into latency, which keeps
//! "search speed" reproducible across machines while preserving the relative
//! costs that drive the paper's trade-offs (e.g. a probe of a large IVF list
//! costs more than a PQ table scan of the same list).

/// Work performed by one (or many, when accumulated) searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCost {
    /// Full-precision distance work in *sequential scans* (IVF lists, FLAT,
    /// growing segments, SCANN re-ranking), in dimension units (one unit =
    /// one f32 multiply-add pair). A d-dim distance adds `d`. Scan work is
    /// subject to the `chunkRows` vectorization factor in the cost model.
    pub f32_dims: u64,
    /// Full-precision distance work during *graph traversal* (HNSW beam
    /// search): random-access pattern, not affected by scan chunking.
    pub graph_dims: u64,
    /// Quantized (u8 / SQ) distance work, in dimension units.
    pub u8_dims: u64,
    /// PQ ADC table lookups (one per subspace per candidate).
    pub pq_lookups: u64,
    /// Graph traversal hops (HNSW neighbor expansions).
    pub graph_hops: u64,
    /// Inverted lists probed.
    pub lists_probed: u64,
    /// Candidates pushed through top-k heaps (heap maintenance work).
    pub heap_pushes: u64,
    /// Segments scattered to (filled in by the VDMS collection layer; one
    /// search touches every sealed segment plus the growing tail).
    pub segments: u64,
}

impl SearchCost {
    /// Record one full-precision distance computation of `dim` dims.
    #[inline]
    pub fn add_f32_distance(&mut self, dim: usize) {
        self.f32_dims += dim as u64;
    }

    /// Record one quantized distance computation of `dim` dims.
    #[inline]
    pub fn add_u8_distance(&mut self, dim: usize) {
        self.u8_dims += dim as u64;
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: &SearchCost) {
        self.f32_dims += other.f32_dims;
        self.graph_dims += other.graph_dims;
        self.u8_dims += other.u8_dims;
        self.pq_lookups += other.pq_lookups;
        self.graph_hops += other.graph_hops;
        self.lists_probed += other.lists_probed;
        self.heap_pushes += other.heap_pushes;
        self.segments += other.segments;
    }

    /// True when no work was recorded.
    pub fn is_zero(&self) -> bool {
        *self == SearchCost::default()
    }
}

impl std::ops::Add for SearchCost {
    type Output = SearchCost;
    fn add(mut self, rhs: SearchCost) -> SearchCost {
        SearchCost::add(&mut self, &rhs);
        self
    }
}

/// Work performed (and memory consumed) while building an index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Training work in dimension units (k-means assignments, PQ training,
    /// HNSW construction distances).
    pub train_dims: u64,
    /// Resident memory of the finished index, in bytes.
    pub memory_bytes: u64,
}

impl BuildStats {
    pub fn add(&mut self, other: &BuildStats) {
        self.train_dims += other.train_dims;
        self.memory_bytes += other.memory_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = SearchCost::default();
        a.add_f32_distance(48);
        a.add_f32_distance(48);
        a.add_u8_distance(16);
        let mut b = SearchCost { graph_hops: 3, ..Default::default() };
        b.add(&a);
        assert_eq!(b.f32_dims, 96);
        assert_eq!(b.u8_dims, 16);
        assert_eq!(b.graph_hops, 3);
    }

    #[test]
    fn add_operator() {
        let a = SearchCost { f32_dims: 1, ..Default::default() };
        let b = SearchCost { f32_dims: 2, pq_lookups: 5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.f32_dims, 3);
        assert_eq!(c.pq_lookups, 5);
    }

    #[test]
    fn zero_detection() {
        assert!(SearchCost::default().is_zero());
        assert!(!SearchCost { heap_pushes: 1, ..Default::default() }.is_zero());
    }
}
