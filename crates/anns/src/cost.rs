//! Deterministic work counters.
//!
//! Indexes count the operations they perform instead of measuring wall-clock
//! time. The VDMS cost model weighs these counters into latency, which keeps
//! "search speed" reproducible across machines while preserving the relative
//! costs that drive the paper's trade-offs (e.g. a probe of a large IVF list
//! costs more than a PQ table scan of the same list).

/// Work performed by one (or many, when accumulated) searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCost {
    /// Full-precision distance work in *sequential scans* (IVF lists, FLAT,
    /// growing segments, SCANN re-ranking), in dimension units (one unit =
    /// one f32 multiply-add pair). A d-dim distance adds `d`. Scan work is
    /// subject to the `chunkRows` vectorization factor in the cost model.
    pub f32_dims: u64,
    /// Full-precision distance work during *graph traversal* (HNSW beam
    /// search): random-access pattern, not affected by scan chunking.
    pub graph_dims: u64,
    /// Quantized (u8 / SQ) distance work, in dimension units.
    pub u8_dims: u64,
    /// PQ ADC table lookups (one per subspace per candidate).
    pub pq_lookups: u64,
    /// Graph traversal hops (HNSW neighbor expansions).
    pub graph_hops: u64,
    /// Inverted lists probed.
    pub lists_probed: u64,
    /// Candidates pushed through top-k heaps (heap maintenance work).
    pub heap_pushes: u64,
    /// Segments scattered to (filled in by the VDMS collection layer; one
    /// search touches every sealed segment plus the growing tail).
    pub segments: u64,
}

impl SearchCost {
    /// Record one full-precision distance computation of `dim` dims.
    #[inline]
    pub fn add_f32_distance(&mut self, dim: usize) {
        self.f32_dims += dim as u64;
    }

    /// Record one quantized distance computation of `dim` dims.
    #[inline]
    pub fn add_u8_distance(&mut self, dim: usize) {
        self.u8_dims += dim as u64;
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: &SearchCost) {
        self.f32_dims += other.f32_dims;
        self.graph_dims += other.graph_dims;
        self.u8_dims += other.u8_dims;
        self.pq_lookups += other.pq_lookups;
        self.graph_hops += other.graph_hops;
        self.lists_probed += other.lists_probed;
        self.heap_pushes += other.heap_pushes;
        self.segments += other.segments;
    }

    /// True when no work was recorded.
    pub fn is_zero(&self) -> bool {
        *self == SearchCost::default()
    }
}

impl std::ops::Add for SearchCost {
    type Output = SearchCost;
    fn add(mut self, rhs: SearchCost) -> SearchCost {
        SearchCost::add(&mut self, &rhs);
        self
    }
}

/// Per-unit scan costs in nanoseconds: what one [`SearchCost`] dimension
/// unit (or PQ lookup) costs when the cost model converts counters into
/// latency.
///
/// [`ScanUnitCosts::ANALYTIC`] holds the workspace's original hand-picked
/// constants; [`ScanUnitCosts::from_kernels_json`] derives the constants
/// from the measured kernel throughputs that the `repro kernels` experiment
/// writes to `results/kernels.json`, so quantization trade-offs in the cost
/// model reflect this machine instead of an analytic guess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanUnitCosts {
    /// ns per full-precision (f32) scan dimension unit.
    pub f32_dim_ns: f64,
    /// ns per quantized (u8/SQ8) scan dimension unit.
    pub u8_dim_ns: f64,
    /// ns per PQ ADC table lookup.
    pub pq_lookup_ns: f64,
}

impl ScanUnitCosts {
    /// The documented analytic fallback (the pre-calibration constants of
    /// the VDMS cost model). Used whenever no measurement file is available
    /// so default-constructed cost models stay bit-identical across hosts.
    pub const ANALYTIC: ScanUnitCosts =
        ScanUnitCosts { f32_dim_ns: 60.0, u8_dim_ns: 20.0, pq_lookup_ns: 25.0 };

    /// Parse the three unit-cost keys from a JSON object slice. Hand-rolled
    /// number extraction — this workspace has no JSON dependency — returning
    /// `None` unless all three keys parse to finite positive numbers.
    fn parse_unit_costs(obj: &str) -> Option<ScanUnitCosts> {
        let get = |key: &str| -> Option<f64> {
            let at = obj.find(&format!("\"{key}\""))?;
            let rest = &obj[at + key.len() + 2..];
            let colon = rest.find(':')?;
            let num: String = rest[colon + 1..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            let v: f64 = num.parse().ok()?;
            (v.is_finite() && v > 0.0).then_some(v)
        };
        Some(ScanUnitCosts {
            f32_dim_ns: get("f32_dim_ns")?,
            u8_dim_ns: get("u8_dim_ns")?,
            pq_lookup_ns: get("pq_lookup_ns")?,
        })
    }

    /// Parse the legacy top-level `calibration` object of a
    /// `results/kernels.json` document (see the schema rustdoc on
    /// `bench::report::emit_json`). This block always holds the *exact*
    /// tier's constants.
    pub fn from_kernels_json(text: &str) -> Option<ScanUnitCosts> {
        ScanUnitCosts::parse_unit_costs(&text[text.find("\"calibration\"")?..])
    }

    /// Parse one entry of the per-tier `tiers` object (`"exact"` or
    /// `"fast"`) of a `results/kernels.json` document.
    pub fn from_kernels_json_tier(text: &str, tier: &str) -> Option<ScanUnitCosts> {
        let tiers = &text[text.find("\"tiers\"")?..];
        ScanUnitCosts::parse_unit_costs(&tiers[tiers.find(&format!("\"{tier}\""))?..])
    }

    /// Load calibrated constants from a `kernels.json` file, falling back
    /// to [`ScanUnitCosts::ANALYTIC`] when the file is missing or invalid.
    pub fn load_or_analytic(path: &std::path::Path) -> ScanUnitCosts {
        ScanUnitCosts::load_tier_or_analytic(path, "exact")
    }

    /// Load one tier's calibrated constants from a `kernels.json` file.
    /// Falls back to the legacy top-level `calibration` block (exact-tier
    /// measurements from files predating the tiered schema), then to
    /// [`ScanUnitCosts::ANALYTIC`].
    pub fn load_tier_or_analytic(path: &std::path::Path, tier: &str) -> ScanUnitCosts {
        ScanUnitCosts::load_tier(path, tier).unwrap_or(ScanUnitCosts::ANALYTIC)
    }

    /// Like [`ScanUnitCosts::load_tier_or_analytic`], but `None` when no
    /// measurement exists — callers that must *report* whether they run
    /// calibrated (rather than silently substituting the analytic
    /// constants) branch on this instead.
    pub fn load_tier(path: &std::path::Path, tier: &str) -> Option<ScanUnitCosts> {
        std::fs::read_to_string(path).ok().and_then(|text| {
            ScanUnitCosts::from_kernels_json_tier(&text, tier)
                .or_else(|| ScanUnitCosts::from_kernels_json(&text))
        })
    }
}

impl Default for ScanUnitCosts {
    fn default() -> Self {
        ScanUnitCosts::ANALYTIC
    }
}

/// Work performed (and memory consumed) while building an index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Training work in dimension units (k-means assignments, PQ training,
    /// HNSW construction distances).
    pub train_dims: u64,
    /// Resident memory of the finished index, in bytes.
    pub memory_bytes: u64,
}

impl BuildStats {
    pub fn add(&mut self, other: &BuildStats) {
        self.train_dims += other.train_dims;
        self.memory_bytes += other.memory_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut a = SearchCost::default();
        a.add_f32_distance(48);
        a.add_f32_distance(48);
        a.add_u8_distance(16);
        let mut b = SearchCost { graph_hops: 3, ..Default::default() };
        b.add(&a);
        assert_eq!(b.f32_dims, 96);
        assert_eq!(b.u8_dims, 16);
        assert_eq!(b.graph_hops, 3);
    }

    #[test]
    fn add_operator() {
        let a = SearchCost { f32_dims: 1, ..Default::default() };
        let b = SearchCost { f32_dims: 2, pq_lookups: 5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.f32_dims, 3);
        assert_eq!(c.pq_lookups, 5);
    }

    #[test]
    fn zero_detection() {
        assert!(SearchCost::default().is_zero());
        assert!(!SearchCost { heap_pushes: 1, ..Default::default() }.is_zero());
    }

    #[test]
    fn scan_unit_costs_parse_from_kernels_json() {
        let text = r#"{
          "experiment": "kernels",
          "calibration": {
            "f32_dim_ns": 1.25,
            "u8_dim_ns": 0.5,
            "pq_lookup_ns": 2e0,
            "source": "measured"
          }
        }"#;
        let c = ScanUnitCosts::from_kernels_json(text).unwrap();
        assert_eq!(c.f32_dim_ns, 1.25);
        assert_eq!(c.u8_dim_ns, 0.5);
        assert_eq!(c.pq_lookup_ns, 2.0);
    }

    #[test]
    fn scan_unit_costs_reject_missing_or_nonpositive_keys() {
        assert!(ScanUnitCosts::from_kernels_json("{}").is_none());
        let missing = r#"{"calibration": {"f32_dim_ns": 1.0, "u8_dim_ns": 0.5}}"#;
        assert!(ScanUnitCosts::from_kernels_json(missing).is_none());
        let negative =
            r#"{"calibration": {"f32_dim_ns": -1.0, "u8_dim_ns": 0.5, "pq_lookup_ns": 2.0}}"#;
        assert!(ScanUnitCosts::from_kernels_json(negative).is_none());
    }

    #[test]
    fn scan_unit_costs_parse_per_tier() {
        let text = r#"{
          "experiment": "kernels",
          "calibration": {
            "f32_dim_ns": 1.25, "u8_dim_ns": 0.5, "pq_lookup_ns": 2.0
          },
          "tiers": {
            "exact": { "f32_dim_ns": 1.25, "u8_dim_ns": 0.5, "pq_lookup_ns": 2.0 },
            "fast": { "f32_dim_ns": 0.25, "u8_dim_ns": 0.125, "pq_lookup_ns": 0.0625 }
          }
        }"#;
        let exact = ScanUnitCosts::from_kernels_json_tier(text, "exact").unwrap();
        assert_eq!(exact.f32_dim_ns, 1.25);
        assert_eq!(exact.pq_lookup_ns, 2.0);
        let fast = ScanUnitCosts::from_kernels_json_tier(text, "fast").unwrap();
        assert_eq!(fast.f32_dim_ns, 0.25);
        assert_eq!(fast.u8_dim_ns, 0.125);
        assert_eq!(fast.pq_lookup_ns, 0.0625);
        // Legacy parser still sees the top-level block.
        assert_eq!(ScanUnitCosts::from_kernels_json(text).unwrap(), exact);
    }

    #[test]
    fn tier_load_falls_back_to_legacy_calibration_block() {
        // Files predating the tiered schema have only `calibration`; both
        // tiers then resolve to it rather than the analytic constants.
        let text = r#"{"calibration": {"f32_dim_ns": 1.0, "u8_dim_ns": 2.0, "pq_lookup_ns": 3.0}}"#;
        assert!(ScanUnitCosts::from_kernels_json_tier(text, "fast").is_none());
        let dir = std::env::temp_dir().join("vdtuner_cost_tier_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kernels.json");
        std::fs::write(&path, text).unwrap();
        let fast = ScanUnitCosts::load_tier_or_analytic(&path, "fast");
        assert_eq!(fast.u8_dim_ns, 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_unit_costs_fall_back_to_analytic() {
        let c = ScanUnitCosts::load_or_analytic(std::path::Path::new("/nonexistent/kernels.json"));
        assert_eq!(c, ScanUnitCosts::ANALYTIC);
        assert_eq!(ScanUnitCosts::default(), ScanUnitCosts::ANALYTIC);
        // The source-reporting variant distinguishes the fallback instead
        // of silently substituting it.
        assert!(ScanUnitCosts::load_tier(std::path::Path::new("/nonexistent/k.json"), "exact")
            .is_none());
    }
}
