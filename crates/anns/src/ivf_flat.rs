//! IVF_FLAT: coarse quantizer + full-precision scan of probed lists.

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf::{GroupedLists, IvfLists};
use crate::kmeans::KMeans;
use crate::params::{IndexParams, SearchParams};
use vecdata::ground_truth::TopK;
use vecdata::kernel;
use vecdata::Neighbor;

/// IVF with raw vectors stored contiguously per posting list, scanned
/// through the dispatched kernel's block API.
#[derive(Debug, Clone)]
pub struct IvfFlatIndex {
    dim: usize,
    quantizer: KMeans,
    groups: GroupedLists,
    /// Vectors gathered into list-grouped contiguous rows: row `j` holds
    /// the vector of `groups.ids[j]`.
    list_data: Vec<f32>,
}

impl IvfFlatIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<IvfFlatIndex, BuildError> {
        if params.nlist == 0 {
            return Err(BuildError::InvalidParam("nlist"));
        }
        let ivf = IvfLists::build(vectors, dim, params.nlist, seed, stats);
        let groups = GroupedLists::from_lists(&ivf.lists);
        let list_data = groups.gather_f32(vectors, dim);
        Ok(IvfFlatIndex { dim, quantizer: ivf.quantizer, groups, list_data })
    }
}

impl VectorIndex for IvfFlatIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        let probes = self.quantizer.nearest_n(query, sp.nprobe, &mut cost.f32_dims);
        let mut top = TopK::new(sp.top_k);
        let kern = kernel::active();
        let mut scores = Vec::new();
        for c in probes {
            cost.lists_probed += 1;
            let r = self.groups.range(c);
            let ids = &self.groups.ids[r.clone()];
            let block = &self.list_data[r.start * self.dim..r.end * self.dim];
            kern.l2_sq_block(query, block, self.dim, &mut scores);
            cost.f32_dims += (ids.len() * self.dim) as u64;
            cost.heap_pushes += ids.len() as u64;
            for (j, &d) in scores.iter().enumerate() {
                top.push(ids[j], d);
            }
        }
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        self.groups.memory_bytes()
            + (self.quantizer.centroids.len() * 4) as u64
            + (self.list_data.len() * 4) as u64
    }

    fn len(&self) -> usize {
        self.list_data.len() / self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    #[test]
    fn more_probes_more_recall() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { nlist: 32, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfFlatIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let gt = ground_truth(&ds, 10);
        let recall_at = |nprobe: usize| {
            let sp = SearchParams { nprobe, ef: 100, reorder_k: 100, top_k: 10 };
            let mut acc = 0.0;
            for qi in 0..ds.n_queries() {
                let mut cost = SearchCost::default();
                let ids: Vec<u32> =
                    idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
                acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
            }
            acc / ds.n_queries() as f64
        };
        let r1 = recall_at(1);
        let r_all = recall_at(32);
        assert!(r_all >= r1, "probing everything must not lower recall");
        assert!(r_all > 0.999, "nprobe=nlist is exhaustive, got {r_all}");
    }

    #[test]
    fn probe_cost_scales_with_nprobe() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { nlist: 32, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfFlatIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let mut c1 = SearchCost::default();
        let mut c8 = SearchCost::default();
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 1, ef: 0, reorder_k: 0, top_k: 10 },
            &mut c1,
        );
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 8, ef: 0, reorder_k: 0, top_k: 10 },
            &mut c8,
        );
        assert!(c8.f32_dims > c1.f32_dims);
        assert_eq!(c1.lists_probed, 1);
        assert_eq!(c8.lists_probed, 8);
    }
}
