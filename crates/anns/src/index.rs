//! The [`VectorIndex`] trait and the [`AnnIndex`] dispatcher.
//!
//! All datasets in the paper use the angular metric and are L2-normalized at
//! ingest (see `vecdata`). On unit vectors, squared L2 distance is a strictly
//! monotone function of angular distance (`||a-b||² = 2·(1-cos)`), so every
//! index here works in squared-L2 space internally; recall and ranking are
//! identical.

use crate::autoindex::AutoIndexIndex;
use crate::cost::{BuildStats, SearchCost};
use crate::flat::FlatIndex;
use crate::hnsw::HnswIndex;
use crate::ivf_flat::IvfFlatIndex;
use crate::ivf_pq::IvfPqIndex;
use crate::ivf_sq8::IvfSq8Index;
use crate::params::{IndexParams, IndexType, SearchParams};
use crate::scann::ScannIndex;
use vecdata::Neighbor;

/// Why an index build was rejected.
///
/// In the real Milvus, bad parameter combinations make index building fail
/// or hang; the tuner must treat those as failed evaluations (the paper feeds
/// back worst-in-history values, §V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `m` does not divide the vector dimensionality.
    PqSubspaceMismatch { dim: usize, m: usize },
    /// A parameter is outside its supported range.
    InvalidParam(&'static str),
    /// The segment holds no vectors.
    EmptySegment,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::PqSubspaceMismatch { dim, m } => {
                write!(f, "PQ m={m} does not divide dim={dim}")
            }
            BuildError::InvalidParam(p) => write!(f, "invalid index parameter: {p}"),
            BuildError::EmptySegment => write!(f, "cannot build an index over an empty segment"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Common interface of all index types.
pub trait VectorIndex {
    /// Top-k search. Returned ids are *local* to the indexed slice
    /// (0-based row numbers); the VDMS collection maps them to global ids.
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor>;

    /// Resident memory of the index structure, in bytes.
    fn memory_bytes(&self) -> u64;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when the index contains no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A built index of any type (static dispatch via enum).
#[derive(Debug, Clone)]
pub enum AnnIndex {
    Flat(FlatIndex),
    IvfFlat(IvfFlatIndex),
    IvfSq8(IvfSq8Index),
    IvfPq(IvfPqIndex),
    Hnsw(HnswIndex),
    Scann(ScannIndex),
    AutoIndex(AutoIndexIndex),
}

impl AnnIndex {
    /// Build an index of `kind` over `vectors` (flat, row-major, `dim` wide).
    ///
    /// Returns the index together with deterministic build statistics
    /// (training work + memory), or a [`BuildError`] for invalid parameter
    /// combinations.
    pub fn build(
        kind: IndexType,
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
    ) -> Result<(AnnIndex, BuildStats), BuildError> {
        if dim == 0 || vectors.is_empty() {
            return Err(BuildError::EmptySegment);
        }
        let mut stats = BuildStats::default();
        let idx = match kind {
            IndexType::Flat => AnnIndex::Flat(FlatIndex::build(vectors, dim, &mut stats)),
            IndexType::IvfFlat => {
                AnnIndex::IvfFlat(IvfFlatIndex::build(vectors, dim, params, seed, &mut stats)?)
            }
            IndexType::IvfSq8 => {
                AnnIndex::IvfSq8(IvfSq8Index::build(vectors, dim, params, seed, &mut stats)?)
            }
            IndexType::IvfPq => {
                AnnIndex::IvfPq(IvfPqIndex::build(vectors, dim, params, seed, &mut stats)?)
            }
            IndexType::Hnsw => {
                AnnIndex::Hnsw(HnswIndex::build(vectors, dim, params, seed, &mut stats)?)
            }
            IndexType::Scann => {
                AnnIndex::Scann(ScannIndex::build(vectors, dim, params, seed, &mut stats)?)
            }
            IndexType::AutoIndex => {
                AnnIndex::AutoIndex(AutoIndexIndex::build(vectors, dim, seed, &mut stats)?)
            }
        };
        stats.memory_bytes = idx.memory_bytes();
        Ok((idx, stats))
    }

    /// The type of this index.
    pub fn kind(&self) -> IndexType {
        match self {
            AnnIndex::Flat(_) => IndexType::Flat,
            AnnIndex::IvfFlat(_) => IndexType::IvfFlat,
            AnnIndex::IvfSq8(_) => IndexType::IvfSq8,
            AnnIndex::IvfPq(_) => IndexType::IvfPq,
            AnnIndex::Hnsw(_) => IndexType::Hnsw,
            AnnIndex::Scann(_) => IndexType::Scann,
            AnnIndex::AutoIndex(_) => IndexType::AutoIndex,
        }
    }
}

impl VectorIndex for AnnIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        match self {
            AnnIndex::Flat(i) => i.search(query, sp, cost),
            AnnIndex::IvfFlat(i) => i.search(query, sp, cost),
            AnnIndex::IvfSq8(i) => i.search(query, sp, cost),
            AnnIndex::IvfPq(i) => i.search(query, sp, cost),
            AnnIndex::Hnsw(i) => i.search(query, sp, cost),
            AnnIndex::Scann(i) => i.search(query, sp, cost),
            AnnIndex::AutoIndex(i) => i.search(query, sp, cost),
        }
    }

    fn memory_bytes(&self) -> u64 {
        match self {
            AnnIndex::Flat(i) => i.memory_bytes(),
            AnnIndex::IvfFlat(i) => i.memory_bytes(),
            AnnIndex::IvfSq8(i) => i.memory_bytes(),
            AnnIndex::IvfPq(i) => i.memory_bytes(),
            AnnIndex::Hnsw(i) => i.memory_bytes(),
            AnnIndex::Scann(i) => i.memory_bytes(),
            AnnIndex::AutoIndex(i) => i.memory_bytes(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnnIndex::Flat(i) => i.len(),
            AnnIndex::IvfFlat(i) => i.len(),
            AnnIndex::IvfSq8(i) => i.len(),
            AnnIndex::IvfPq(i) => i.len(),
            AnnIndex::Hnsw(i) => i.len(),
            AnnIndex::Scann(i) => i.len(),
            AnnIndex::AutoIndex(i) => i.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{DatasetKind, DatasetSpec};

    /// Recall of each index type must beat random retrieval and FLAT must be
    /// perfect — the basic sanity contract for the whole crate.
    #[test]
    fn all_types_build_and_search() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams::default().sanitized(ds.dim(), 10);
        let gt = vecdata::ground_truth(&ds, 10);
        for kind in IndexType::ALL {
            let (idx, stats) = AnnIndex::build(kind, ds.raw(), ds.dim(), &params, 99).unwrap();
            assert_eq!(idx.kind(), kind);
            assert_eq!(idx.len(), ds.len());
            assert!(stats.memory_bytes > 0, "{kind} memory");
            let sp = SearchParams::from_params(&params, 10);
            let mut total_recall = 0.0;
            for qi in 0..ds.n_queries() {
                let mut cost = SearchCost::default();
                let res = idx.search(ds.query(qi), &sp, &mut cost);
                assert!(res.len() <= 10);
                assert!(!cost.is_zero(), "{kind} must report cost");
                let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
                total_recall += vecdata::ground_truth::recall(&ids, &gt[qi]);
            }
            let recall = total_recall / ds.n_queries() as f64;
            assert!(recall > 0.3, "{kind} recall too low: {recall}");
            if kind == IndexType::Flat {
                assert!(recall > 0.999, "FLAT must be exact, got {recall}");
            }
        }
    }

    #[test]
    fn empty_build_fails() {
        let err = AnnIndex::build(IndexType::Flat, &[], 8, &IndexParams::default(), 0);
        assert!(matches!(err, Err(BuildError::EmptySegment)));
    }

    #[test]
    fn build_is_deterministic() {
        let ds = DatasetSpec::tiny(DatasetKind::KeywordMatch).generate();
        let params = IndexParams::default().sanitized(ds.dim(), 10);
        let sp = SearchParams::from_params(&params, 10);
        for kind in [IndexType::IvfFlat, IndexType::Hnsw, IndexType::Scann] {
            let (a, _) = AnnIndex::build(kind, ds.raw(), ds.dim(), &params, 7).unwrap();
            let (b, _) = AnnIndex::build(kind, ds.raw(), ds.dim(), &params, 7).unwrap();
            let mut ca = SearchCost::default();
            let mut cb = SearchCost::default();
            let ra: Vec<u32> = a.search(ds.query(0), &sp, &mut ca).iter().map(|n| n.id).collect();
            let rb: Vec<u32> = b.search(ds.query(0), &sp, &mut cb).iter().map(|n| n.id).collect();
            assert_eq!(ra, rb, "{kind} results must be deterministic");
            assert_eq!(ca, cb, "{kind} cost must be deterministic");
        }
    }
}
