//! Index types and their tunable parameters (paper Table I).
//!
//! The tunable parameters differ per index type — this is Challenge 3 in the
//! paper and the reason VDTuner needs a holistic model with a polling
//! acquisition. The ranges below follow Milvus' documented limits, scaled
//! where noted so that the scaled-down datasets stay meaningful.

/// The seven index types supported by Milvus 2.3 and tuned by VDTuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexType {
    Flat,
    IvfFlat,
    IvfSq8,
    IvfPq,
    Hnsw,
    Scann,
    AutoIndex,
}

impl IndexType {
    /// All index types, in the paper's Table I order.
    pub const ALL: [IndexType; 7] = [
        IndexType::Flat,
        IndexType::IvfFlat,
        IndexType::IvfSq8,
        IndexType::IvfPq,
        IndexType::Hnsw,
        IndexType::Scann,
        IndexType::AutoIndex,
    ];

    /// Milvus-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexType::Flat => "FLAT",
            IndexType::IvfFlat => "IVF_FLAT",
            IndexType::IvfSq8 => "IVF_SQ8",
            IndexType::IvfPq => "IVF_PQ",
            IndexType::Hnsw => "HNSW",
            IndexType::Scann => "SCANN",
            IndexType::AutoIndex => "AUTOINDEX",
        }
    }

    /// Stable ordinal used when encoding the index type as a model input.
    pub fn ordinal(&self) -> usize {
        IndexType::ALL.iter().position(|t| t == self).expect("in ALL")
    }

    /// Inverse of [`IndexType::ordinal`]; clamps out-of-range values.
    pub fn from_ordinal(i: usize) -> IndexType {
        IndexType::ALL[i.min(IndexType::ALL.len() - 1)]
    }

    /// Names of the *building* parameters this index exposes (Table I).
    pub fn build_param_names(&self) -> &'static [&'static str] {
        match self {
            IndexType::Flat | IndexType::AutoIndex => &[],
            IndexType::IvfFlat | IndexType::IvfSq8 | IndexType::Scann => &["nlist"],
            IndexType::IvfPq => &["nlist", "m", "nbits"],
            IndexType::Hnsw => &["M", "efConstruction"],
        }
    }

    /// Names of the *searching* parameters this index exposes (Table I).
    pub fn search_param_names(&self) -> &'static [&'static str] {
        match self {
            IndexType::Flat | IndexType::AutoIndex => &[],
            IndexType::IvfFlat | IndexType::IvfSq8 | IndexType::IvfPq => &["nprobe"],
            IndexType::Hnsw => &["ef"],
            IndexType::Scann => &["nprobe", "reorder_k"],
        }
    }

    /// All tunable parameter names (build + search) for this index type.
    pub fn param_names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.build_param_names().to_vec();
        v.extend_from_slice(self.search_param_names());
        v
    }
}

impl std::fmt::Display for IndexType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The union of all index parameters across index types.
///
/// VDTuner's holistic model keeps *one copy* of each parameter; parameters
/// that do not belong to the currently polled index type are frozen to the
/// defaults below (paper §IV-C). The 8 fields here plus the index type and
/// the 7 system parameters give the paper's 16-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// IVF*/SCANN: number of inverted lists (cluster centroids).
    pub nlist: usize,
    /// IVF*/SCANN: number of lists probed at search time.
    pub nprobe: usize,
    /// IVF_PQ: number of product-quantizer subspaces (must divide dim).
    pub m: usize,
    /// IVF_PQ: bits per PQ code (4..=8 here; Milvus allows 1..=16).
    pub nbits: usize,
    /// HNSW: max out-degree per node on upper layers (level 0 uses 2M).
    pub hnsw_m: usize,
    /// HNSW: beam width while building.
    pub ef_construction: usize,
    /// HNSW: beam width while searching.
    pub ef: usize,
    /// SCANN: candidates re-ranked with full-precision vectors.
    pub reorder_k: usize,
}

impl Default for IndexParams {
    /// Milvus defaults (the paper's "Default" baseline).
    fn default() -> Self {
        IndexParams {
            nlist: 128,
            nprobe: 8,
            m: 4,
            nbits: 8,
            hnsw_m: 16,
            ef_construction: 200,
            ef: 100,
            reorder_k: 256,
        }
    }
}

/// Inclusive range of one tunable parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamRange {
    pub lo: f64,
    pub hi: f64,
    /// Sample/optimize in log2 space (spreads resolution like Milvus docs suggest).
    pub log: bool,
}

impl ParamRange {
    pub const fn new(lo: f64, hi: f64, log: bool) -> Self {
        ParamRange { lo, hi, log }
    }

    /// Map a unit-interval coordinate to a concrete value.
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if self.log {
            let (llo, lhi) = (self.lo.max(1e-9).ln(), self.hi.ln());
            (llo + u * (lhi - llo)).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        }
    }

    /// Map a concrete value back to the unit interval.
    pub fn normalize(&self, v: f64) -> f64 {
        let v = v.clamp(self.lo, self.hi);
        if self.log {
            let (llo, lhi) = (self.lo.max(1e-9).ln(), self.hi.ln());
            if lhi <= llo {
                return 0.0;
            }
            ((v.max(1e-9).ln() - llo) / (lhi - llo)).clamp(0.0, 1.0)
        } else if self.hi <= self.lo {
            0.0
        } else {
            ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        }
    }
}

/// Tuning ranges for the 8 index parameters (scaled to our dataset sizes).
pub mod ranges {
    use super::ParamRange;

    pub const NLIST: ParamRange = ParamRange::new(8.0, 1024.0, true);
    pub const NPROBE: ParamRange = ParamRange::new(1.0, 256.0, true);
    pub const PQ_M: ParamRange = ParamRange::new(1.0, 16.0, true);
    pub const PQ_NBITS: ParamRange = ParamRange::new(4.0, 8.0, false);
    pub const HNSW_M: ParamRange = ParamRange::new(4.0, 64.0, true);
    pub const EF_CONSTRUCTION: ParamRange = ParamRange::new(8.0, 512.0, true);
    pub const EF: ParamRange = ParamRange::new(16.0, 512.0, true);
    pub const REORDER_K: ParamRange = ParamRange::new(32.0, 1024.0, true);
}

impl IndexParams {
    /// Clamp every parameter into its tuning range and fix cross-parameter
    /// constraints (`nprobe <= nlist`, `m` divides `dim`, `reorder_k >= k`).
    pub fn sanitized(mut self, dim: usize, top_k: usize) -> Self {
        use ranges::*;
        self.nlist = (self.nlist as f64).clamp(NLIST.lo, NLIST.hi) as usize;
        self.nprobe = (self.nprobe as f64).clamp(NPROBE.lo, NPROBE.hi) as usize;
        self.nprobe = self.nprobe.min(self.nlist).max(1);
        self.m = nearest_divisor(dim, self.m.max(1));
        self.nbits = self.nbits.clamp(PQ_NBITS.lo as usize, PQ_NBITS.hi as usize);
        self.hnsw_m = (self.hnsw_m as f64).clamp(HNSW_M.lo, HNSW_M.hi) as usize;
        self.ef_construction =
            (self.ef_construction as f64).clamp(EF_CONSTRUCTION.lo, EF_CONSTRUCTION.hi) as usize;
        self.ef = (self.ef as f64).clamp(EF.lo, EF.hi) as usize;
        self.ef = self.ef.max(top_k);
        self.reorder_k = (self.reorder_k as f64).clamp(REORDER_K.lo, REORDER_K.hi) as usize;
        self.reorder_k = self.reorder_k.max(top_k);
        self
    }
}

/// Largest divisor of `dim` that is `<= want` (at least 1), so PQ's `m`
/// always splits the dimensionality exactly.
pub fn nearest_divisor(dim: usize, want: usize) -> usize {
    let want = want.max(1).min(dim.max(1));
    (1..=want).rev().find(|d| dim.is_multiple_of(*d)).unwrap_or(1)
}

/// Search-time parameters extracted from [`IndexParams`] for a given type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    pub nprobe: usize,
    pub ef: usize,
    pub reorder_k: usize,
    pub top_k: usize,
}

impl SearchParams {
    pub fn from_params(p: &IndexParams, top_k: usize) -> Self {
        SearchParams {
            nprobe: p.nprobe,
            ef: p.ef.max(top_k),
            reorder_k: p.reorder_k.max(top_k),
            top_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_param_names() {
        assert!(IndexType::Flat.param_names().is_empty());
        assert_eq!(IndexType::IvfFlat.param_names(), vec!["nlist", "nprobe"]);
        assert_eq!(IndexType::IvfPq.param_names(), vec!["nlist", "m", "nbits", "nprobe"]);
        assert_eq!(IndexType::Hnsw.param_names(), vec!["M", "efConstruction", "ef"]);
        assert_eq!(IndexType::Scann.param_names(), vec!["nlist", "nprobe", "reorder_k"]);
        assert!(IndexType::AutoIndex.param_names().is_empty());
    }

    #[test]
    fn ordinal_roundtrip() {
        for t in IndexType::ALL {
            assert_eq!(IndexType::from_ordinal(t.ordinal()), t);
        }
        assert_eq!(IndexType::from_ordinal(99), IndexType::AutoIndex);
    }

    #[test]
    fn range_normalize_roundtrip() {
        for range in [ranges::NLIST, ranges::PQ_NBITS, ranges::EF] {
            for v in [range.lo, (range.lo + range.hi) / 2.0, range.hi] {
                let u = range.normalize(v);
                let back = range.denormalize(u);
                assert!((back - v).abs() / v.max(1.0) < 0.02, "{v} -> {u} -> {back}");
            }
        }
    }

    #[test]
    fn log_range_spreads_small_values() {
        let r = ranges::NLIST;
        // Half the unit interval should cover the geometric midpoint, not the
        // arithmetic one.
        let mid = r.denormalize(0.5);
        assert!(mid < (r.lo + r.hi) / 2.0);
        assert!((mid - (r.lo * r.hi).sqrt()).abs() < 2.0);
    }

    #[test]
    fn nearest_divisor_works() {
        assert_eq!(nearest_divisor(48, 5), 4);
        assert_eq!(nearest_divisor(48, 6), 6);
        assert_eq!(nearest_divisor(48, 100), 48);
        assert_eq!(nearest_divisor(7, 3), 1);
        assert_eq!(nearest_divisor(16, 1), 1);
    }

    #[test]
    fn sanitize_enforces_constraints() {
        let p = IndexParams {
            nlist: 16,
            nprobe: 400,
            m: 5,
            nbits: 99,
            ef: 1,
            reorder_k: 1,
            ..Default::default()
        }
        .sanitized(48, 10);
        assert!(p.nprobe <= p.nlist);
        assert_eq!(48 % p.m, 0);
        assert_eq!(p.nbits, 8);
        assert!(p.ef >= 16); // range lo
        assert!(p.reorder_k >= 32);
    }

    #[test]
    fn defaults_are_milvus_defaults() {
        let d = IndexParams::default();
        assert_eq!(d.nlist, 128);
        assert_eq!(d.nprobe, 8);
        assert_eq!(d.hnsw_m, 16);
        assert_eq!(d.ef_construction, 200);
        assert_eq!(d.ef, 100);
    }
}
