//! IVF_PQ: IVF lists storing product-quantization codes, searched with
//! asymmetric distance computation (ADC) lookup tables.

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf::{GroupedLists, IvfLists};
use crate::kmeans::{argmin, KMeans};
use crate::params::{IndexParams, SearchParams};
use vecdata::ground_truth::TopK;
use vecdata::kernel;
use vecdata::Neighbor;

/// A trained product quantizer: `m` subspaces × `2^nbits` centroids each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    pub dim: usize,
    pub m: usize,
    pub dsub: usize,
    pub ksub: usize,
    /// Codebooks, `m` of them, each `ksub * dsub` floats.
    pub codebooks: Vec<Vec<f32>>,
}

impl ProductQuantizer {
    /// Train the `m` sub-codebooks with k-means over the subvectors.
    pub fn train(
        vectors: &[f32],
        dim: usize,
        m: usize,
        nbits: usize,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<ProductQuantizer, BuildError> {
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(BuildError::PqSubspaceMismatch { dim, m });
        }
        if !(1..=16).contains(&nbits) {
            return Err(BuildError::InvalidParam("nbits"));
        }
        let dsub = dim / m;
        let ksub = 1usize << nbits;
        let n = vectors.len() / dim;
        let mut codebooks = Vec::with_capacity(m);
        let mut sub = vec![0.0f32; n * dsub];
        for s in 0..m {
            for i in 0..n {
                let src = &vectors[i * dim + s * dsub..i * dim + (s + 1) * dsub];
                sub[i * dsub..(i + 1) * dsub].copy_from_slice(src);
            }
            let km = KMeans::train(&sub, dsub, ksub, seed.wrapping_add(s as u64), stats);
            // Pad codebook to ksub rows if the data had fewer points.
            let mut cb = km.centroids;
            cb.resize(ksub * dsub, 0.0);
            codebooks.push(cb);
        }
        Ok(ProductQuantizer { dim, m, dsub, ksub, codebooks })
    }

    /// Encode a vector into `m` code bytes (one codebook index per subspace).
    ///
    /// Each codebook is a contiguous `ksub x dsub` block, so the argmin is
    /// block-scored through the dispatched kernel; the strict-< tie rule
    /// keeps codes identical to the old per-centroid loop.
    pub fn encode(&self, v: &[f32], out: &mut [u8]) {
        let kern = kernel::active();
        let mut scores = Vec::with_capacity(self.ksub);
        for s in 0..self.m {
            let sub = &v[s * self.dsub..(s + 1) * self.dsub];
            kern.l2_sq_block(sub, &self.codebooks[s], self.dsub, &mut scores);
            out[s] = argmin(&scores) as u8;
        }
    }

    /// Build the per-query ADC table: `m * ksub` partial squared distances,
    /// one kernel block call per subspace codebook. Allocating convenience
    /// wrapper over [`ProductQuantizer::adc_table_into`].
    pub fn adc_table(&self, query: &[f32], cost: &mut SearchCost) -> Vec<f32> {
        let mut table = Vec::new();
        let mut scores = Vec::new();
        self.adc_table_into(query, &mut table, &mut scores, cost);
        table
    }

    /// Build the ADC table into caller-owned buffers (`scores` is kernel
    /// scratch). With warm buffers this does zero allocations, so batched
    /// search pays no per-query allocation in the table step. The filled
    /// `table` is identical to what [`ProductQuantizer::adc_table`] returns.
    pub fn adc_table_into(
        &self,
        query: &[f32],
        table: &mut Vec<f32>,
        scores: &mut Vec<f32>,
        cost: &mut SearchCost,
    ) {
        let kern = kernel::active();
        table.clear();
        table.resize(self.m * self.ksub, 0.0);
        for s in 0..self.m {
            let sub = &query[s * self.dsub..(s + 1) * self.dsub];
            kern.l2_sq_block(sub, &self.codebooks[s], self.dsub, scores);
            table[s * self.ksub..s * self.ksub + self.ksub].copy_from_slice(scores);
            cost.f32_dims += (self.ksub * self.dsub) as u64;
        }
    }

    /// Approximate squared distance of a code via the ADC table.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], code: &[u8]) -> f32 {
        let mut acc = 0.0f32;
        for s in 0..self.m {
            acc += table[s * self.ksub + code[s] as usize];
        }
        acc
    }

    /// Memory of the codebooks in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.m * self.ksub * self.dsub * 4) as u64
    }
}

/// Quantize a 4-bit ADC table (`m × 16` f32 entries) into the `u8` LUT
/// layout the fast tier's `adc4_lut16_block` kernel consumes. Entries are
/// offset by their subspace minimum and scaled by one shared step, so a
/// scored sum reconstructs as `bias + delta · sum`. Returns `(bias, delta)`;
/// `luts` is resized to `m * 16`.
pub fn quantize_adc4_table(table: &[f32], m: usize, luts: &mut Vec<u8>) -> (f32, f32) {
    assert_eq!(table.len(), m * 16, "quantize_adc4_table: table is not m x 16");
    luts.clear();
    luts.resize(m * 16, 0);
    let mut bias = 0.0f32;
    let mut span_max = 0.0f32;
    for s in 0..m {
        let row = &table[s * 16..s * 16 + 16];
        let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        bias += lo;
        span_max = span_max.max(hi - lo);
    }
    let delta = (span_max / 255.0).max(1e-20);
    for s in 0..m {
        let row = &table[s * 16..s * 16 + 16];
        let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
        for c in 0..16 {
            luts[s * 16 + c] = (((row[c] - lo) / delta).round()).clamp(0.0, 255.0) as u8;
        }
    }
    (bias, delta)
}

/// Quantize an 8-bit ADC table (`m × 256` f32 entries) into the two-plane
/// `u8` LUT layout the fast tier's `adc8_lut256_block` kernel consumes:
/// entries are offset by their subspace minimum and scaled by one shared
/// step into `u16`, stored per subspace as 256 low bytes then 256 high
/// bytes, so a scored sum reconstructs as `bias + delta · sum`. The `u16`
/// range gives 256× finer steps than the 4-bit path's `u8` quantization —
/// that is what makes quantizing a full 256-entry table viable. Returns
/// `(bias, delta)`; `luts` is resized to `m * 512`.
pub fn quantize_adc8_table(table: &[f32], m: usize, luts: &mut Vec<u8>) -> (f32, f32) {
    assert_eq!(table.len(), m * 256, "quantize_adc8_table: table is not m x 256");
    luts.clear();
    luts.resize(m * 512, 0);
    let mut bias = 0.0f32;
    let mut span_max = 0.0f32;
    for s in 0..m {
        let row = &table[s * 256..s * 256 + 256];
        let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        bias += lo;
        span_max = span_max.max(hi - lo);
    }
    let delta = (span_max / 65535.0).max(1e-20);
    for s in 0..m {
        let row = &table[s * 256..s * 256 + 256];
        let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
        for c in 0..256 {
            let q = (((row[c] - lo) / delta).round()).clamp(0.0, 65535.0) as u16;
            luts[s * 512 + c] = (q & 0xFF) as u8;
            luts[s * 512 + 256 + c] = (q >> 8) as u8;
        }
    }
    (bias, delta)
}

/// Reusable per-thread scratch for PQ search: the ADC table, kernel score
/// buffers, and the fast tier's quantized LUT / integer-sum buffers. Batched
/// search does zero per-query allocations once these are warm.
#[derive(Debug, Default)]
pub struct PqScratch {
    pub table: Vec<f32>,
    pub scores: Vec<f32>,
    pub luts: Vec<u8>,
    pub sums: Vec<u32>,
}

thread_local! {
    static PQ_SCRATCH: std::cell::RefCell<PqScratch> =
        std::cell::RefCell::new(PqScratch::default());
}

/// Run `f` with this thread's warm [`PqScratch`].
pub(crate) fn with_pq_scratch<R>(f: impl FnOnce(&mut PqScratch) -> R) -> R {
    PQ_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// IVF over PQ codes, stored contiguously per posting list.
#[derive(Debug, Clone)]
pub struct IvfPqIndex {
    quantizer: KMeans,
    groups: GroupedLists,
    pq: ProductQuantizer,
    /// Codes gathered into list-grouped contiguous `m`-byte rows: row `j`
    /// holds the code of `groups.ids[j]`.
    list_codes: Vec<u8>,
    n: usize,
    /// Fast tier ([`kernel::KernelPolicy::Fast`]): score probed lists with
    /// the SIMD ADC kernels instead of the scalar per-byte loop.
    fast: bool,
    /// Per-list 4-bit codes in the fast tier's packed batch-of-32 layout
    /// (built only when `fast` and `ksub == 16`).
    packed4: Option<Vec<Vec<u8>>>,
    /// Per-list 8-bit codes in the fast tier's batch-of-32 subspace-major
    /// layout for the two-level `vpshufb` scorer (built only when `fast`,
    /// `ksub == 256` and `m <= 256` — the kernel's accumulator cap).
    packed8: Option<Vec<Vec<u8>>>,
}

impl IvfPqIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<IvfPqIndex, BuildError> {
        if params.nlist == 0 {
            return Err(BuildError::InvalidParam("nlist"));
        }
        let ivf = IvfLists::build(vectors, dim, params.nlist, seed, stats);
        let pq =
            ProductQuantizer::train(vectors, dim, params.m, params.nbits, seed ^ 0x9051, stats)?;
        let n = vectors.len() / dim;
        let mut codes = vec![0u8; n * pq.m];
        for i in 0..n {
            pq.encode(&vectors[i * dim..(i + 1) * dim], &mut codes[i * pq.m..(i + 1) * pq.m]);
        }
        stats.train_dims += (n * pq.m * pq.ksub * pq.dsub) as u64; // encode pass
        let groups = GroupedLists::from_lists(&ivf.lists);
        let list_codes = groups.gather_u8(&codes, pq.m);
        let mut idx = IvfPqIndex {
            quantizer: ivf.quantizer,
            groups,
            pq,
            list_codes,
            n,
            fast: false,
            packed4: None,
            packed8: None,
        };
        if kernel::active_policy() == kernel::KernelPolicy::Fast {
            idx.set_fast_tier(true);
        }
        Ok(idx)
    }

    /// Toggle the fast-tier scoring path (on by default when the process
    /// policy is `VDTUNER_KERNEL=fast`; exposed so tests and benches can
    /// exercise both tiers in one process). Turning it on packs 4-bit codes
    /// into the SIMD LUT layout (or 8-bit codes into the two-level shuffle
    /// layout); turning it off drops them.
    pub fn set_fast_tier(&mut self, on: bool) {
        self.fast = on;
        let m = self.pq.m;
        if on && self.pq.ksub == 16 && self.packed4.is_none() {
            let packed = (0..self.groups.n_lists())
                .map(|c| {
                    let r = self.groups.range(c);
                    kernel::pack_codes4(&self.list_codes[r.start * m..r.end * m], m)
                })
                .collect();
            self.packed4 = Some(packed);
        }
        if on && self.pq.ksub == 256 && m <= 256 && self.packed8.is_none() {
            let packed = (0..self.groups.n_lists())
                .map(|c| {
                    let r = self.groups.range(c);
                    kernel::pack_codes8(&self.list_codes[r.start * m..r.end * m], m)
                })
                .collect();
            self.packed8 = Some(packed);
        }
        if !on {
            self.packed4 = None;
            self.packed8 = None;
        }
    }
}

impl VectorIndex for IvfPqIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        let probes = self.quantizer.nearest_n(query, sp.nprobe, &mut cost.f32_dims);
        let mut top = TopK::new(sp.top_k);
        let m = self.pq.m;
        with_pq_scratch(|scratch| {
            self.pq.adc_table_into(query, &mut scratch.table, &mut scratch.scores, cost);
            // Fast tier with 4-bit codes: one shared quantized LUT per query.
            let lut4 = if self.fast && self.pq.ksub == 16 && self.packed4.is_some() {
                Some(quantize_adc4_table(&scratch.table, m, &mut scratch.luts))
            } else {
                None
            };
            // Fast tier with 8-bit codes: one shared two-plane u16 LUT per
            // query, scored gather-free by the two-level shuffle kernel.
            let lut8 = if self.fast && self.pq.ksub == 256 && self.packed8.is_some() {
                Some(quantize_adc8_table(&scratch.table, m, &mut scratch.luts))
            } else {
                None
            };
            let kern = if self.fast { kernel::fast() } else { kernel::active() };
            for c in probes {
                cost.lists_probed += 1;
                let r = self.groups.range(c);
                let ids = &self.groups.ids[r.clone()];
                let codes = &self.list_codes[r.start * m..r.end * m];
                cost.pq_lookups += (ids.len() * m) as u64;
                cost.heap_pushes += ids.len() as u64;
                if let Some((bias, delta)) = lut4 {
                    let packed = &self.packed4.as_ref().unwrap()[c];
                    kern.adc4_lut16_block(&scratch.luts, packed, m, ids.len(), &mut scratch.sums);
                    for (j, &s) in scratch.sums.iter().enumerate() {
                        top.push(ids[j], bias + delta * s as f32);
                    }
                } else if let Some((bias, delta)) = lut8 {
                    let packed = &self.packed8.as_ref().unwrap()[c];
                    kern.adc8_lut256_block(&scratch.luts, packed, m, ids.len(), &mut scratch.sums);
                    for (j, &s) in scratch.sums.iter().enumerate() {
                        top.push(ids[j], bias + delta * s as f32);
                    }
                } else if self.fast {
                    kern.adc_block(&scratch.table, self.pq.ksub, codes, m, &mut scratch.scores);
                    for (j, &d) in scratch.scores.iter().enumerate() {
                        top.push(ids[j], d);
                    }
                } else {
                    for (j, code) in codes.chunks_exact(m).enumerate() {
                        top.push(ids[j], self.pq.adc_distance(&scratch.table, code));
                    }
                }
            }
        });
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        let sum_lists = |p: &Option<Vec<Vec<u8>>>| -> u64 {
            p.as_ref().map(|p| p.iter().map(|l| l.len() as u64).sum()).unwrap_or(0)
        };
        let packed: u64 = sum_lists(&self.packed4) + sum_lists(&self.packed8);
        self.groups.memory_bytes()
            + (self.quantizer.centroids.len() * 4) as u64
            + self.list_codes.len() as u64
            + self.pq.memory_bytes()
            + packed
    }

    fn len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    #[test]
    fn pq_rejects_bad_m() {
        let data = vec![0.5f32; 10 * 6];
        let mut stats = BuildStats::default();
        let err = ProductQuantizer::train(&data, 6, 4, 8, 0, &mut stats);
        assert!(matches!(err, Err(BuildError::PqSubspaceMismatch { dim: 6, m: 4 })));
    }

    #[test]
    fn pq_rejects_bad_nbits() {
        let data = vec![0.5f32; 10 * 8];
        let mut stats = BuildStats::default();
        assert!(ProductQuantizer::train(&data, 8, 2, 0, 0, &mut stats).is_err());
        assert!(ProductQuantizer::train(&data, 8, 2, 17, 0, &mut stats).is_err());
    }

    #[test]
    fn adc_distance_approximates_exact() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let pq = ProductQuantizer::train(ds.raw(), ds.dim(), 8, 6, 3, &mut stats).unwrap();
        let q = ds.query(0);
        let mut cost = SearchCost::default();
        let table = pq.adc_table(q, &mut cost);
        let mut code = vec![0u8; pq.m];
        let mut err_acc = 0.0f64;
        for i in 0..50 {
            let v = ds.vector(i);
            pq.encode(v, &mut code);
            let exact = vecdata::distance::l2_sq(q, v);
            let approx = pq.adc_distance(&table, &code);
            err_acc += (exact - approx).abs() as f64;
        }
        // Mean absolute error should be small relative to typical distances
        // (unit vectors → distances in [0, 4]).
        assert!(err_acc / 50.0 < 0.5, "mean ADC err {}", err_acc / 50.0);
    }

    #[test]
    fn ivf_pq_end_to_end_recall() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 16, m: 8, nbits: 8, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let gt = ground_truth(&ds, 10);
        let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            assert!(cost.pq_lookups > 0);
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        let recall = acc / ds.n_queries() as f64;
        // PQ is lossy; exhaustive probing should still recover most neighbors.
        assert!(recall > 0.5, "IVF_PQ recall {recall}");
    }

    #[test]
    fn adc_table_into_matches_allocating_path_bitwise() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let pq = ProductQuantizer::train(ds.raw(), ds.dim(), 8, 6, 3, &mut stats).unwrap();
        // Warm, dirty scratch from a previous "query": must be fully
        // overwritten, never appended to.
        let mut table = vec![99.0f32; 7];
        let mut scores = vec![42.0f32; 3];
        for qi in 0..ds.n_queries() {
            let mut c1 = SearchCost::default();
            let mut c2 = SearchCost::default();
            let want = pq.adc_table(ds.query(qi), &mut c1);
            pq.adc_table_into(ds.query(qi), &mut table, &mut scores, &mut c2);
            assert_eq!(table.len(), want.len());
            for (a, b) in table.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(c1.f32_dims, c2.f32_dims);
        }
    }

    #[test]
    fn quantized_adc4_lut_reconstructs_table_sums() {
        let m = 6usize;
        let table: Vec<f32> = (0..m * 16).map(|i| ((i as f32) * 0.91).sin().abs() * 2.0).collect();
        let mut luts = Vec::new();
        let (bias, delta) = quantize_adc4_table(&table, m, &mut luts);
        // Any code row's quantized sum must land within m quantization steps
        // of the exact table sum.
        for trial in 0..32u32 {
            let code: Vec<u8> = (0..m).map(|s| ((trial as usize * 5 + s * 3) % 16) as u8).collect();
            let exact: f32 = (0..m).map(|s| table[s * 16 + code[s] as usize]).sum();
            let sum: u32 = (0..m).map(|s| luts[s * 16 + code[s] as usize] as u32).sum();
            let approx = bias + delta * sum as f32;
            assert!(
                (approx - exact).abs() <= delta * m as f32 + 1e-5,
                "exact {exact} approx {approx} delta {delta}"
            );
        }
    }

    #[test]
    fn quantized_adc8_lut_reconstructs_table_sums() {
        let m = 6usize;
        let table: Vec<f32> = (0..m * 256).map(|i| ((i as f32) * 0.91).sin().abs() * 2.0).collect();
        let mut luts = Vec::new();
        let (bias, delta) = quantize_adc8_table(&table, m, &mut luts);
        assert_eq!(luts.len(), m * 512);
        // Any code row's quantized sum must land within m quantization steps
        // of the exact table sum — and the u16 steps are tiny.
        for trial in 0..32u32 {
            let code: Vec<u8> =
                (0..m).map(|s| ((trial as usize * 37 + s * 11) % 256) as u8).collect();
            let exact: f32 = (0..m).map(|s| table[s * 256 + code[s] as usize]).sum();
            let sum: u32 = (0..m)
                .map(|s| {
                    let c = code[s] as usize;
                    luts[s * 512 + c] as u32 + 256 * luts[s * 512 + 256 + c] as u32
                })
                .sum();
            let approx = bias + delta * sum as f32;
            assert!(
                (approx - exact).abs() <= delta * m as f32 + 1e-5,
                "exact {exact} approx {approx} delta {delta}"
            );
        }
    }

    #[test]
    fn fast_tier_8bit_search_matches_exact_ids_closely() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 8, m: 8, nbits: 8, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let mut idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let sp = SearchParams { nprobe: 8, ef: 0, reorder_k: 0, top_k: 10 };
        let mut overlap = 0usize;
        let mut total = 0usize;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            idx.set_fast_tier(false);
            let exact: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            idx.set_fast_tier(true);
            assert!(idx.packed8.is_some(), "8-bit codes must pack for the fast tier");
            let fast: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            total += exact.len();
            overlap += fast.iter().filter(|id| exact.contains(id)).count();
        }
        // u16 quantization perturbs distances by ≤ m steps of a 1/65535
        // span; top-10 membership stays essentially intact.
        assert!(overlap as f64 >= 0.9 * total as f64, "fast/exact top-k overlap {overlap}/{total}");
    }

    #[test]
    fn fast_tier_search_matches_exact_ids_closely() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 8, m: 8, nbits: 4, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let mut idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let sp = SearchParams { nprobe: 8, ef: 0, reorder_k: 0, top_k: 10 };
        let mut overlap = 0usize;
        let mut total = 0usize;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            idx.set_fast_tier(false);
            let exact: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            idx.set_fast_tier(true);
            assert!(idx.packed4.is_some(), "4-bit codes must pack for the fast tier");
            let fast: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            total += exact.len();
            overlap += fast.iter().filter(|id| exact.contains(id)).count();
        }
        // The quantized LUT only perturbs distances by ≤ m quantization
        // steps; top-10 membership stays essentially intact.
        assert!(overlap as f64 >= 0.9 * total as f64, "fast/exact top-k overlap {overlap}/{total}");
    }

    #[test]
    fn codes_memory_much_smaller_than_raw() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 16, m: 4, nbits: 4, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        // Codes are m bytes per vector vs dim*4 raw bytes; with the codebook
        // overhead total memory must still be far below raw storage.
        assert!(idx.memory_bytes() < (ds.raw().len() * 4 / 2) as u64);
    }
}
