//! IVF_PQ: IVF lists storing product-quantization codes, searched with
//! asymmetric distance computation (ADC) lookup tables.

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf::{GroupedLists, IvfLists};
use crate::kmeans::{argmin, KMeans};
use crate::params::{IndexParams, SearchParams};
use vecdata::ground_truth::TopK;
use vecdata::kernel;
use vecdata::Neighbor;

/// A trained product quantizer: `m` subspaces × `2^nbits` centroids each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    pub dim: usize,
    pub m: usize,
    pub dsub: usize,
    pub ksub: usize,
    /// Codebooks, `m` of them, each `ksub * dsub` floats.
    pub codebooks: Vec<Vec<f32>>,
}

impl ProductQuantizer {
    /// Train the `m` sub-codebooks with k-means over the subvectors.
    pub fn train(
        vectors: &[f32],
        dim: usize,
        m: usize,
        nbits: usize,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<ProductQuantizer, BuildError> {
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(BuildError::PqSubspaceMismatch { dim, m });
        }
        if !(1..=16).contains(&nbits) {
            return Err(BuildError::InvalidParam("nbits"));
        }
        let dsub = dim / m;
        let ksub = 1usize << nbits;
        let n = vectors.len() / dim;
        let mut codebooks = Vec::with_capacity(m);
        let mut sub = vec![0.0f32; n * dsub];
        for s in 0..m {
            for i in 0..n {
                let src = &vectors[i * dim + s * dsub..i * dim + (s + 1) * dsub];
                sub[i * dsub..(i + 1) * dsub].copy_from_slice(src);
            }
            let km = KMeans::train(&sub, dsub, ksub, seed.wrapping_add(s as u64), stats);
            // Pad codebook to ksub rows if the data had fewer points.
            let mut cb = km.centroids;
            cb.resize(ksub * dsub, 0.0);
            codebooks.push(cb);
        }
        Ok(ProductQuantizer { dim, m, dsub, ksub, codebooks })
    }

    /// Encode a vector into `m` code bytes (one codebook index per subspace).
    ///
    /// Each codebook is a contiguous `ksub x dsub` block, so the argmin is
    /// block-scored through the dispatched kernel; the strict-< tie rule
    /// keeps codes identical to the old per-centroid loop.
    pub fn encode(&self, v: &[f32], out: &mut [u8]) {
        let kern = kernel::active();
        let mut scores = Vec::with_capacity(self.ksub);
        for s in 0..self.m {
            let sub = &v[s * self.dsub..(s + 1) * self.dsub];
            kern.l2_sq_block(sub, &self.codebooks[s], self.dsub, &mut scores);
            out[s] = argmin(&scores) as u8;
        }
    }

    /// Build the per-query ADC table: `m * ksub` partial squared distances,
    /// one kernel block call per subspace codebook.
    pub fn adc_table(&self, query: &[f32], cost: &mut SearchCost) -> Vec<f32> {
        let kern = kernel::active();
        let mut table = vec![0.0f32; self.m * self.ksub];
        let mut scores = Vec::with_capacity(self.ksub);
        for s in 0..self.m {
            let sub = &query[s * self.dsub..(s + 1) * self.dsub];
            kern.l2_sq_block(sub, &self.codebooks[s], self.dsub, &mut scores);
            table[s * self.ksub..s * self.ksub + self.ksub].copy_from_slice(&scores);
            cost.f32_dims += (self.ksub * self.dsub) as u64;
        }
        table
    }

    /// Approximate squared distance of a code via the ADC table.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], code: &[u8]) -> f32 {
        let mut acc = 0.0f32;
        for s in 0..self.m {
            acc += table[s * self.ksub + code[s] as usize];
        }
        acc
    }

    /// Memory of the codebooks in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.m * self.ksub * self.dsub * 4) as u64
    }
}

/// IVF over PQ codes, stored contiguously per posting list.
#[derive(Debug, Clone)]
pub struct IvfPqIndex {
    quantizer: KMeans,
    groups: GroupedLists,
    pq: ProductQuantizer,
    /// Codes gathered into list-grouped contiguous `m`-byte rows: row `j`
    /// holds the code of `groups.ids[j]`.
    list_codes: Vec<u8>,
    n: usize,
}

impl IvfPqIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<IvfPqIndex, BuildError> {
        if params.nlist == 0 {
            return Err(BuildError::InvalidParam("nlist"));
        }
        let ivf = IvfLists::build(vectors, dim, params.nlist, seed, stats);
        let pq =
            ProductQuantizer::train(vectors, dim, params.m, params.nbits, seed ^ 0x9051, stats)?;
        let n = vectors.len() / dim;
        let mut codes = vec![0u8; n * pq.m];
        for i in 0..n {
            pq.encode(&vectors[i * dim..(i + 1) * dim], &mut codes[i * pq.m..(i + 1) * pq.m]);
        }
        stats.train_dims += (n * pq.m * pq.ksub * pq.dsub) as u64; // encode pass
        let groups = GroupedLists::from_lists(&ivf.lists);
        let list_codes = groups.gather_u8(&codes, pq.m);
        Ok(IvfPqIndex { quantizer: ivf.quantizer, groups, pq, list_codes, n })
    }
}

impl VectorIndex for IvfPqIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        let probes = self.quantizer.nearest_n(query, sp.nprobe, &mut cost.f32_dims);
        let table = self.pq.adc_table(query, cost);
        let mut top = TopK::new(sp.top_k);
        let m = self.pq.m;
        for c in probes {
            cost.lists_probed += 1;
            let r = self.groups.range(c);
            let ids = &self.groups.ids[r.clone()];
            let codes = &self.list_codes[r.start * m..r.end * m];
            cost.pq_lookups += (ids.len() * m) as u64;
            cost.heap_pushes += ids.len() as u64;
            for (j, code) in codes.chunks_exact(m).enumerate() {
                top.push(ids[j], self.pq.adc_distance(&table, code));
            }
        }
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        self.groups.memory_bytes()
            + (self.quantizer.centroids.len() * 4) as u64
            + self.list_codes.len() as u64
            + self.pq.memory_bytes()
    }

    fn len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    #[test]
    fn pq_rejects_bad_m() {
        let data = vec![0.5f32; 10 * 6];
        let mut stats = BuildStats::default();
        let err = ProductQuantizer::train(&data, 6, 4, 8, 0, &mut stats);
        assert!(matches!(err, Err(BuildError::PqSubspaceMismatch { dim: 6, m: 4 })));
    }

    #[test]
    fn pq_rejects_bad_nbits() {
        let data = vec![0.5f32; 10 * 8];
        let mut stats = BuildStats::default();
        assert!(ProductQuantizer::train(&data, 8, 2, 0, 0, &mut stats).is_err());
        assert!(ProductQuantizer::train(&data, 8, 2, 17, 0, &mut stats).is_err());
    }

    #[test]
    fn adc_distance_approximates_exact() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let pq = ProductQuantizer::train(ds.raw(), ds.dim(), 8, 6, 3, &mut stats).unwrap();
        let q = ds.query(0);
        let mut cost = SearchCost::default();
        let table = pq.adc_table(q, &mut cost);
        let mut code = vec![0u8; pq.m];
        let mut err_acc = 0.0f64;
        for i in 0..50 {
            let v = ds.vector(i);
            pq.encode(v, &mut code);
            let exact = vecdata::distance::l2_sq(q, v);
            let approx = pq.adc_distance(&table, &code);
            err_acc += (exact - approx).abs() as f64;
        }
        // Mean absolute error should be small relative to typical distances
        // (unit vectors → distances in [0, 4]).
        assert!(err_acc / 50.0 < 0.5, "mean ADC err {}", err_acc / 50.0);
    }

    #[test]
    fn ivf_pq_end_to_end_recall() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 16, m: 8, nbits: 8, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        let gt = ground_truth(&ds, 10);
        let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            assert!(cost.pq_lookups > 0);
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        let recall = acc / ds.n_queries() as f64;
        // PQ is lossy; exhaustive probing should still recover most neighbors.
        assert!(recall > 0.5, "IVF_PQ recall {recall}");
    }

    #[test]
    fn codes_memory_much_smaller_than_raw() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params =
            IndexParams { nlist: 16, m: 4, nbits: 4, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        // Codes are m bytes per vector vs dim*4 raw bytes; with the codebook
        // overhead total memory must still be far below raw storage.
        assert!(idx.memory_bytes() < (ds.raw().len() * 4 / 2) as u64);
    }
}
