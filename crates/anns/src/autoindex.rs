//! AUTOINDEX: Milvus' "no knobs" option.
//!
//! Milvus' AUTOINDEX picks an index automatically and hides its parameters
//! (Table I lists them as N/A). On CPU deployments AUTOINDEX favors
//! quantization-based indexes for ingest/build efficiency; we mirror that
//! with an IVF_SQ8 whose `nlist`/`nprobe` follow the usual `~4·√n`
//! heuristic. Search parameters are fixed internally — the tuner can select
//! AUTOINDEX but cannot tune it, exactly as in the paper. This is also what
//! gives the paper's `Default` baseline its recall headroom (Table IV):
//! heuristic quantized defaults leave recall on the table that tuned
//! configurations recover.

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf_sq8::IvfSq8Index;
use crate::params::{IndexParams, SearchParams};
use vecdata::Neighbor;

/// The heuristic self-configured index.
#[derive(Debug, Clone)]
pub struct AutoIndexIndex {
    inner: IvfSq8Index,
    /// Fixed internal nprobe used regardless of requested search params.
    nprobe: usize,
}

impl AutoIndexIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<AutoIndexIndex, BuildError> {
        let n = vectors.len() / dim.max(1);
        // nlist ≈ 4·√n (the rule of thumb in the Milvus/FAISS docs), probing
        // a small fixed share of the lists.
        let nlist = ((4.0 * (n as f64).sqrt()) as usize).clamp(16, 1024);
        let nprobe = (nlist / 48).max(2);
        let params = IndexParams { nlist, ..Default::default() };
        let inner = IvfSq8Index::build(vectors, dim, &params, seed, stats)?;
        Ok(AutoIndexIndex { inner, nprobe })
    }
}

impl VectorIndex for AutoIndexIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        // AUTOINDEX ignores user search params except top_k.
        let fixed = SearchParams { nprobe: self.nprobe, ef: 0, reorder_k: 0, top_k: sp.top_k };
        self.inner.search(query, &fixed, cost)
    }

    fn memory_bytes(&self) -> u64 {
        self.inner.memory_bytes()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{DatasetKind, DatasetSpec};

    #[test]
    fn ignores_search_params() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let idx = AutoIndexIndex::build(ds.raw(), ds.dim(), 3, &mut stats).unwrap();
        let mut c1 = SearchCost::default();
        let mut c2 = SearchCost::default();
        let r1: Vec<u32> = idx
            .search(
                ds.query(0),
                &SearchParams { nprobe: 1, ef: 16, reorder_k: 1, top_k: 10 },
                &mut c1,
            )
            .iter()
            .map(|n| n.id)
            .collect();
        let r2: Vec<u32> = idx
            .search(
                ds.query(0),
                &SearchParams { nprobe: 99, ef: 512, reorder_k: 512, top_k: 10 },
                &mut c2,
            )
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(r1, r2, "AUTOINDEX must not react to tuned search params");
        assert_eq!(c1, c2);
    }

    #[test]
    fn imperfect_but_usable_recall_out_of_the_box() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let idx = AutoIndexIndex::build(ds.raw(), ds.dim(), 3, &mut stats).unwrap();
        let gt = vecdata::ground_truth(&ds, 10);
        let sp = SearchParams { nprobe: 0, ef: 0, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        let recall = acc / ds.n_queries() as f64;
        // Heuristic defaults: decent, not perfect — the headroom the tuner
        // exploits in Table IV.
        assert!(recall > 0.3, "recall {recall}");
    }

    #[test]
    fn heuristic_nlist_scales_with_n() {
        let small = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let mut stats = BuildStats::default();
        let idx = AutoIndexIndex::build(small.raw(), small.dim(), 3, &mut stats).unwrap();
        // n=600 → nlist ≈ 4·24.5 ≈ 97, nprobe = max(2, 97/48) = 2.
        assert_eq!(idx.nprobe, 2);
    }
}
