//! IVF_SQ8: IVF lists storing 8-bit scalar-quantized vectors.
//!
//! Each dimension is linearly quantized to `u8` with per-dimension min/max
//! trained over the segment. Memory drops ~4x vs IVF_FLAT and scans run in
//! the cheaper quantized domain, at a small recall penalty — exactly the
//! trade-off the tuner must discover.

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf::{GroupedLists, IvfLists};
use crate::kmeans::KMeans;
use crate::params::{IndexParams, SearchParams};
use vecdata::ground_truth::TopK;
use vecdata::kernel;
use vecdata::Neighbor;

/// Per-dimension linear quantizer to `u8`.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    pub mins: Vec<f32>,
    pub scales: Vec<f32>, // (max-min)/255, zero-guarded
}

impl ScalarQuantizer {
    /// Train min/max per dimension over all vectors.
    pub fn train(vectors: &[f32], dim: usize) -> ScalarQuantizer {
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for v in vectors.chunks_exact(dim) {
            for d in 0..dim {
                mins[d] = mins[d].min(v[d]);
                maxs[d] = maxs[d].max(v[d]);
            }
        }
        let scales =
            mins.iter().zip(&maxs).map(|(lo, hi)| ((hi - lo) / 255.0).max(1e-12)).collect();
        ScalarQuantizer { mins, scales }
    }

    /// Quantize one vector into `out`.
    #[inline]
    pub fn encode(&self, v: &[f32], out: &mut [u8]) {
        for d in 0..v.len() {
            let q = ((v[d] - self.mins[d]) / self.scales[d]).round();
            out[d] = q.clamp(0.0, 255.0) as u8;
        }
    }

    /// Squared L2 distance between a raw query and a quantized code,
    /// evaluated by dequantizing on the fly (asymmetric distance). Routed
    /// through the dispatched SIMD kernel; bit-identical to the original
    /// sequential dequantize-and-accumulate loop.
    #[inline]
    pub fn asymmetric_l2(&self, query: &[f32], code: &[u8]) -> f32 {
        kernel::active().sq8_l2(query, code, &self.mins, &self.scales)
    }

    /// The shared quantization step of the symmetric fast-tier scan: the
    /// largest per-dimension step. Per-dimension mins cancel in code
    /// *differences*, so re-encoding every dimension with one shared step
    /// makes the integer sum of squared code deltas reconstruct plain L2 as
    /// `sum · step²` — per-dimension steps would mis-weight dimensions.
    pub fn sym_scale(&self) -> f32 {
        self.scales.iter().copied().fold(1e-12f32, f32::max)
    }

    /// Quantize one vector with per-dimension mins but the shared
    /// [`ScalarQuantizer::sym_scale`] step (the symmetric-scan encoding).
    #[inline]
    pub fn encode_sym(&self, v: &[f32], out: &mut [u8]) {
        let s = self.sym_scale();
        for d in 0..v.len() {
            let q = ((v[d] - self.mins[d]) / s).round();
            out[d] = q.clamp(0.0, 255.0) as u8;
        }
    }
}

/// IVF over SQ8 codes, stored contiguously per posting list so probed lists
/// scan quantized codes through the kernel's asymmetric block API.
#[derive(Debug, Clone)]
pub struct IvfSq8Index {
    dim: usize,
    quantizer: KMeans,
    groups: GroupedLists,
    sq: ScalarQuantizer,
    /// Codes gathered into list-grouped contiguous rows: row `j` holds the
    /// code of `groups.ids[j]`.
    list_codes: Vec<u8>,
    /// Fast tier ([`kernel::KernelPolicy::Fast`]): quantize the query too
    /// and scan symmetrically in pure integer arithmetic over `sym_codes`,
    /// rescaling integer sums by the shared squared step.
    fast: bool,
    /// List-grouped codes re-encoded with the shared symmetric step
    /// ([`ScalarQuantizer::sym_scale`]); present only while `fast` is on.
    sym_codes: Option<Vec<u8>>,
}

thread_local! {
    /// Per-thread query-code + integer-sum scratch for the symmetric scan.
    static SQ8_SCRATCH: std::cell::RefCell<(Vec<u8>, Vec<u32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl IvfSq8Index {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<IvfSq8Index, BuildError> {
        if params.nlist == 0 {
            return Err(BuildError::InvalidParam("nlist"));
        }
        let ivf = IvfLists::build(vectors, dim, params.nlist, seed, stats);
        let sq = ScalarQuantizer::train(vectors, dim);
        let n = vectors.len() / dim;
        let mut codes = vec![0u8; n * dim];
        for i in 0..n {
            sq.encode(&vectors[i * dim..(i + 1) * dim], &mut codes[i * dim..(i + 1) * dim]);
        }
        stats.train_dims += vectors.len() as u64; // encode pass
        let groups = GroupedLists::from_lists(&ivf.lists);
        let list_codes = groups.gather_u8(&codes, dim);
        let mut idx = IvfSq8Index {
            dim,
            quantizer: ivf.quantizer,
            groups,
            sq,
            list_codes,
            fast: false,
            sym_codes: None,
        };
        if kernel::active_policy() == kernel::KernelPolicy::Fast {
            idx.set_fast_tier(true);
        }
        Ok(idx)
    }

    /// Toggle the fast-tier symmetric scan (on by default when the process
    /// policy is `VDTUNER_KERNEL=fast`; exposed so tests and benches can
    /// exercise both tiers in one process). Turning it on transcodes the
    /// stored codes to the shared symmetric step (`c · scale_d / sym_scale`,
    /// one extra rounding of at most half a step); turning it off drops them.
    pub fn set_fast_tier(&mut self, on: bool) {
        self.fast = on;
        if on && self.sym_codes.is_none() {
            let s = self.sq.sym_scale();
            let sym = self
                .list_codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let scale = self.sq.scales[i % self.dim];
                    (c as f32 * scale / s).round().clamp(0.0, 255.0) as u8
                })
                .collect();
            self.sym_codes = Some(sym);
        }
        if !on {
            self.sym_codes = None;
        }
    }
}

impl VectorIndex for IvfSq8Index {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        let probes = self.quantizer.nearest_n(query, sp.nprobe, &mut cost.f32_dims);
        let mut top = TopK::new(sp.top_k);
        if let (true, Some(sym_codes)) = (self.fast, self.sym_codes.as_ref()) {
            // Symmetric scan: quantize the query once, then the whole probe
            // loop is integer arithmetic. With the shared step, per-dim mins
            // cancel and the integer sum rescales to L2 as `sum · step²`.
            let kern = kernel::fast();
            let step = self.sq.sym_scale();
            let weight = step * step;
            SQ8_SCRATCH.with(|s| {
                let (qcode, sums) = &mut *s.borrow_mut();
                qcode.resize(self.dim, 0);
                self.sq.encode_sym(query, qcode);
                for c in probes {
                    cost.lists_probed += 1;
                    let r = self.groups.range(c);
                    let ids = &self.groups.ids[r.clone()];
                    let codes = &sym_codes[r.start * self.dim..r.end * self.dim];
                    kern.sq8_sym_l2_block(qcode, codes, self.dim, sums);
                    cost.u8_dims += (ids.len() * self.dim) as u64;
                    cost.heap_pushes += ids.len() as u64;
                    for (j, &s) in sums.iter().enumerate() {
                        top.push(ids[j], s as f32 * weight);
                    }
                }
            });
            return top.into_sorted();
        }
        let kern = kernel::active();
        let mut scores = Vec::new();
        for c in probes {
            cost.lists_probed += 1;
            let r = self.groups.range(c);
            let ids = &self.groups.ids[r.clone()];
            let codes = &self.list_codes[r.start * self.dim..r.end * self.dim];
            kern.sq8_l2_block(query, codes, &self.sq.mins, &self.sq.scales, self.dim, &mut scores);
            cost.u8_dims += (ids.len() * self.dim) as u64;
            cost.heap_pushes += ids.len() as u64;
            for (j, &d) in scores.iter().enumerate() {
                top.push(ids[j], d);
            }
        }
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        self.groups.memory_bytes()
            + (self.quantizer.centroids.len() * 4) as u64
            + self.list_codes.len() as u64
            + self.sym_codes.as_ref().map_or(0, |s| s.len() as u64)
            + (self.sq.mins.len() * 8) as u64
    }

    fn len(&self) -> usize {
        self.list_codes.len() / self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    #[test]
    fn quantizer_roundtrip_error_bounded() {
        let data: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let sq = ScalarQuantizer::train(&data, 8);
        let mut code = [0u8; 8];
        for v in data.chunks_exact(8) {
            sq.encode(v, &mut code);
            for d in 0..8 {
                let back = sq.mins[d] + code[d] as f32 * sq.scales[d];
                assert!((back - v[d]).abs() <= sq.scales[d] * 0.51 + 1e-6);
            }
        }
    }

    #[test]
    fn asymmetric_distance_close_to_exact() {
        let data: Vec<f32> = (0..40).map(|i| (i as f32 * 0.37).cos()).collect();
        let sq = ScalarQuantizer::train(&data, 4);
        let q = [0.1f32, -0.2, 0.3, 0.4];
        for v in data.chunks_exact(4) {
            let mut code = [0u8; 4];
            sq.encode(v, &mut code);
            let exact = vecdata::distance::l2_sq(&q, v);
            let approx = sq.asymmetric_l2(&q, &code);
            assert!((exact - approx).abs() < 0.05, "exact {exact} approx {approx}");
        }
    }

    #[test]
    fn asymmetric_distance_matches_legacy_sequential_loop_bitwise() {
        let data: Vec<f32> = (0..123).map(|i| (i as f32 * 0.77).sin() * 2.0).collect();
        let q: Vec<f32> = (0..41).map(|i| (i as f32 * 0.31).cos()).collect();
        let sq = ScalarQuantizer::train(&data[..82], 41);
        let mut code = vec![0u8; 41];
        sq.encode(&data[82..], &mut code);
        let mut legacy = 0.0f32;
        for d in 0..q.len() {
            let x = sq.mins[d] + code[d] as f32 * sq.scales[d];
            let diff = q[d] - x;
            legacy += diff * diff;
        }
        let got = sq.asymmetric_l2(&q, &code);
        // Bit-identity is the *exact* tier's contract; the fast tier only
        // promises the bounded error checked in `tests/fast_tier_bounds.rs`.
        match kernel::active_policy() {
            kernel::KernelPolicy::Exact => assert_eq!(got.to_bits(), legacy.to_bits()),
            kernel::KernelPolicy::Fast => {
                assert!((got - legacy).abs() <= 1e-4 * legacy.max(1.0))
            }
        }
    }

    #[test]
    fn fast_symmetric_scan_keeps_recall() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let mut idx = IvfSq8Index::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        idx.set_fast_tier(true);
        let gt = ground_truth(&ds, 10);
        let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            assert!(cost.u8_dims > 0);
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        let recall = acc / ds.n_queries() as f64;
        assert!(recall > 0.8, "SQ8 symmetric exhaustive recall {recall}");
    }

    #[test]
    fn sq8_recall_reasonable_and_memory_smaller_than_flat() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = IvfSq8Index::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
        assert!(idx.memory_bytes() < (ds.raw().len() * 4) as u64);
        let gt = ground_truth(&ds, 10);
        let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            assert!(cost.u8_dims > 0);
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        let recall = acc / ds.n_queries() as f64;
        assert!(recall > 0.8, "SQ8 exhaustive recall {recall}");
    }
}
