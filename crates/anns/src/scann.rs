//! SCANN-style index: IVF partitioning + compact 4-bit product quantization
//! for the first-pass scan, followed by full-precision re-ranking of the top
//! `reorder_k` candidates.
//!
//! Google's ScaNN adds anisotropic quantization loss; the behaviourally
//! relevant properties for tuning — a cheap lossy scan whose recall is
//! recovered by `reorder_k` re-ranking, with `nlist`/`nprobe` controlling the
//! partition trade-off — are preserved here (documented substitution, see
//! DESIGN.md).

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::ivf::{GroupedLists, IvfLists};
use crate::ivf_pq::{quantize_adc4_table, with_pq_scratch, ProductQuantizer};
use crate::kmeans::KMeans;
use crate::params::{nearest_divisor, IndexParams, SearchParams};
use vecdata::distance::l2_sq;
use vecdata::ground_truth::TopK;
use vecdata::kernel;
use vecdata::Neighbor;

/// SCANN-like two-stage index. Stage-1 PQ codes are stored contiguously per
/// posting list; the re-ranking stage gathers full-precision rows by id
/// (random access, so it stays per-pair through the kernel-routed `l2_sq`).
#[derive(Debug, Clone)]
pub struct ScannIndex {
    dim: usize,
    quantizer: KMeans,
    groups: GroupedLists,
    pq: ProductQuantizer,
    /// Codes gathered into list-grouped contiguous rows (row `j` encodes
    /// `groups.ids[j]`).
    list_codes: Vec<u8>,
    /// Full-precision vectors kept for the re-ranking stage, in original
    /// id order (re-ranking indexes by candidate id, not list position).
    data: Vec<f32>,
    /// Fast tier ([`kernel::KernelPolicy::Fast`]): score stage 1 through the
    /// SIMD 4-bit LUT kernel over `packed4` instead of the scalar ADC loop.
    /// Re-ranking stays exact either way.
    fast: bool,
    /// Per-list 4-bit codes in the packed batch-of-32 layout (SCANN codes
    /// are always 4-bit, so this exists whenever `fast` is on).
    packed4: Option<Vec<Vec<u8>>>,
}

impl ScannIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<ScannIndex, BuildError> {
        if params.nlist == 0 {
            return Err(BuildError::InvalidParam("nlist"));
        }
        let ivf = IvfLists::build(vectors, dim, params.nlist, seed, stats);
        // SCANN uses aggressive 4-bit codes over ~2-dim subspaces.
        let m = nearest_divisor(dim, (dim / 2).max(1));
        let pq = ProductQuantizer::train(vectors, dim, m, 4, seed ^ 0x5CA1, stats)?;
        let n = vectors.len() / dim;
        let mut codes = vec![0u8; n * pq.m];
        for i in 0..n {
            pq.encode(&vectors[i * dim..(i + 1) * dim], &mut codes[i * pq.m..(i + 1) * pq.m]);
        }
        stats.train_dims += (n * pq.m * pq.ksub * pq.dsub) as u64;
        let groups = GroupedLists::from_lists(&ivf.lists);
        let list_codes = groups.gather_u8(&codes, pq.m);
        let mut idx = ScannIndex {
            dim,
            quantizer: ivf.quantizer,
            groups,
            pq,
            list_codes,
            data: vectors.to_vec(),
            fast: false,
            packed4: None,
        };
        if kernel::active_policy() == kernel::KernelPolicy::Fast {
            idx.set_fast_tier(true);
        }
        Ok(idx)
    }

    /// Toggle the fast-tier stage-1 scoring path (on by default when the
    /// process policy is `VDTUNER_KERNEL=fast`; exposed so tests and benches
    /// can exercise both tiers in one process).
    pub fn set_fast_tier(&mut self, on: bool) {
        self.fast = on;
        if on && self.packed4.is_none() {
            let m = self.pq.m;
            let packed = (0..self.groups.n_lists())
                .map(|c| {
                    let r = self.groups.range(c);
                    kernel::pack_codes4(&self.list_codes[r.start * m..r.end * m], m)
                })
                .collect();
            self.packed4 = Some(packed);
        }
        if !on {
            self.packed4 = None;
        }
    }
}

impl VectorIndex for ScannIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        let probes = self.quantizer.nearest_n(query, sp.nprobe, &mut cost.f32_dims);
        // First pass: collect reorder_k candidates by ADC distance.
        let reorder_k = sp.reorder_k.max(sp.top_k);
        let m = self.pq.m;
        let mut stage1 = TopK::new(reorder_k);
        with_pq_scratch(|scratch| {
            self.pq.adc_table_into(query, &mut scratch.table, &mut scratch.scores, cost);
            let lut4 = if self.fast && self.packed4.is_some() {
                Some(quantize_adc4_table(&scratch.table, m, &mut scratch.luts))
            } else {
                None
            };
            let kern = kernel::fast();
            for c in probes {
                cost.lists_probed += 1;
                let r = self.groups.range(c);
                let ids = &self.groups.ids[r.clone()];
                let codes = &self.list_codes[r.start * m..r.end * m];
                cost.pq_lookups += (ids.len() * m) as u64;
                cost.heap_pushes += ids.len() as u64;
                if let Some((bias, delta)) = lut4 {
                    let packed = &self.packed4.as_ref().unwrap()[c];
                    kern.adc4_lut16_block(&scratch.luts, packed, m, ids.len(), &mut scratch.sums);
                    for (j, &s) in scratch.sums.iter().enumerate() {
                        stage1.push(ids[j], bias + delta * s as f32);
                    }
                } else {
                    for (j, code) in codes.chunks_exact(m).enumerate() {
                        stage1.push(ids[j], self.pq.adc_distance(&scratch.table, code));
                    }
                }
            }
        });
        // Second pass: exact re-ranking of the survivors.
        let mut top = TopK::new(sp.top_k);
        for cand in stage1.into_sorted() {
            let v = &self.data[cand.id as usize * self.dim..(cand.id as usize + 1) * self.dim];
            cost.add_f32_distance(self.dim);
            top.push(cand.id, l2_sq(query, v));
        }
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        let packed: u64 =
            self.packed4.as_ref().map(|p| p.iter().map(|l| l.len() as u64).sum()).unwrap_or(0);
        self.groups.memory_bytes()
            + (self.quantizer.centroids.len() * 4) as u64
            + self.list_codes.len() as u64
            + self.pq.memory_bytes()
            + (self.data.len() * 4) as u64
            + packed
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    fn setup() -> (vecdata::Dataset, ScannIndex) {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = ScannIndex::build(ds.raw(), ds.dim(), &params, 2, &mut stats).unwrap();
        (ds, idx)
    }

    fn recall_with(
        ds: &vecdata::Dataset,
        idx: &ScannIndex,
        nprobe: usize,
        reorder_k: usize,
    ) -> f64 {
        let gt = ground_truth(ds, 10);
        let sp = SearchParams { nprobe, ef: 0, reorder_k, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        acc / ds.n_queries() as f64
    }

    #[test]
    fn reorder_recovers_recall() {
        let (ds, idx) = setup();
        let small = recall_with(&ds, &idx, 16, 10);
        let large = recall_with(&ds, &idx, 16, 200);
        assert!(large >= small, "reorder_k must not hurt recall: {small} -> {large}");
        assert!(large > 0.9, "SCANN with big reorder should be accurate, got {large}");
    }

    #[test]
    fn fast_tier_stage1_keeps_reranked_recall() {
        let (ds, mut idx) = setup();
        let exact = recall_with(&ds, &idx, 16, 200);
        idx.set_fast_tier(true);
        assert!(idx.packed4.is_some());
        let fast = recall_with(&ds, &idx, 16, 200);
        // Stage 1 only selects re-rank candidates; with a generous
        // reorder_k the LUT quantization noise must not cost recall.
        assert!(fast >= exact - 0.02, "fast stage-1 recall {fast} vs exact {exact}");
    }

    #[test]
    fn reorder_cost_visible_in_f32_dims() {
        let (ds, idx) = setup();
        let mut c_small = SearchCost::default();
        let mut c_large = SearchCost::default();
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 8, ef: 0, reorder_k: 16, top_k: 10 },
            &mut c_small,
        );
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 8, ef: 0, reorder_k: 256, top_k: 10 },
            &mut c_large,
        );
        assert!(c_large.f32_dims > c_small.f32_dims);
        assert_eq!(c_large.pq_lookups, c_small.pq_lookups); // same scan stage
    }
}
