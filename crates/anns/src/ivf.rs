//! Shared inverted-file (IVF) machinery for IVF_FLAT / IVF_SQ8 / IVF_PQ /
//! SCANN: coarse k-means quantizer plus per-centroid posting lists.

use crate::cost::BuildStats;
use crate::kmeans::KMeans;

/// Coarse quantizer + inverted lists. Each list holds local row ids.
#[derive(Debug, Clone)]
pub struct IvfLists {
    pub quantizer: KMeans,
    pub lists: Vec<Vec<u32>>,
}

impl IvfLists {
    /// Train the coarse quantizer and assign every vector to its list.
    pub fn build(
        vectors: &[f32],
        dim: usize,
        nlist: usize,
        seed: u64,
        stats: &mut BuildStats,
    ) -> IvfLists {
        let n = vectors.len() / dim;
        let quantizer = KMeans::train(vectors, dim, nlist, seed, stats);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); quantizer.k];
        for i in 0..n {
            let v = &vectors[i * dim..(i + 1) * dim];
            let c = quantizer.nearest(v);
            lists[c].push(i as u32);
        }
        stats.train_dims += (n * quantizer.k * dim) as u64; // assignment pass
        IvfLists { quantizer, lists }
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// True when no vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory of the list structure itself (ids + centroids).
    pub fn memory_bytes(&self) -> u64 {
        let ids: usize = self.lists.iter().map(|l| l.len() * 4).sum();
        let centroids = self.quantizer.centroids.len() * 4;
        (ids + centroids) as u64
    }
}

/// Posting lists flattened into one contiguous id buffer (CSR-style
/// offsets), so per-list vector/code payloads can be stored contiguously
/// and scanned through the kernel block API.
///
/// List order and within-list id order are exactly [`IvfLists`]'s (ids
/// ascending within each list, since the build pass assigns `0..n` in
/// order), which is what keeps search results bit-identical to the old
/// per-id gather.
#[derive(Debug, Clone)]
pub struct GroupedLists {
    /// `n_lists + 1` row offsets into `ids` (and, scaled by the payload
    /// width, into the per-list payload buffers).
    pub offsets: Vec<usize>,
    /// All ids, grouped by list.
    pub ids: Vec<u32>,
}

impl GroupedLists {
    /// Flatten per-list id vectors, preserving order.
    pub fn from_lists(lists: &[Vec<u32>]) -> GroupedLists {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut ids = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in lists {
            ids.extend_from_slice(list);
            offsets.push(ids.len());
        }
        GroupedLists { offsets, ids }
    }

    /// Number of posting lists.
    pub fn n_lists(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row range of list `c` (applies to `ids` and, scaled by the row
    /// width, to gathered payload buffers).
    #[inline]
    pub fn range(&self, c: usize) -> std::ops::Range<usize> {
        self.offsets[c]..self.offsets[c + 1]
    }

    /// Ids of list `c`, in the original push order.
    #[inline]
    pub fn list(&self, c: usize) -> &[u32] {
        &self.ids[self.range(c)]
    }

    /// Gather `width`-wide f32 rows of `data` into list-grouped contiguous
    /// storage: row `j` of the result is the payload of `ids[j]`.
    pub fn gather_f32(&self, data: &[f32], width: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.ids.len() * width);
        for &id in &self.ids {
            out.extend_from_slice(&data[id as usize * width..(id as usize + 1) * width]);
        }
        out
    }

    /// Gather `width`-wide u8 code rows into list-grouped contiguous storage.
    pub fn gather_u8(&self, codes: &[u8], width: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ids.len() * width);
        for &id in &self.ids {
            out.extend_from_slice(&codes[id as usize * width..(id as usize + 1) * width]);
        }
        out
    }

    /// Memory of the grouped id buffer (same id count — and therefore the
    /// same bytes — as the nested lists it replaced).
    pub fn memory_bytes(&self) -> u64 {
        (self.ids.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vectors_assigned_exactly_once() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.push(i as f32);
            data.push((i % 7) as f32);
        }
        let mut stats = BuildStats::default();
        let ivf = IvfLists::build(&data, 2, 8, 3, &mut stats);
        assert_eq!(ivf.len(), 200);
        let mut seen = [false; 200];
        for list in &ivf.lists {
            for &id in list {
                assert!(!seen[id as usize], "id {id} assigned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grouped_lists_preserve_order_and_payloads() {
        let lists = vec![vec![2u32, 5], vec![], vec![0, 1, 4], vec![3]];
        let g = GroupedLists::from_lists(&lists);
        assert_eq!(g.n_lists(), 4);
        assert_eq!(g.len(), 6);
        for (c, list) in lists.iter().enumerate() {
            assert_eq!(g.list(c), list.as_slice());
        }
        // Gathered payload row j belongs to ids[j].
        let data: Vec<f32> = (0..12).map(|x| x as f32).collect(); // 6 rows of dim 2
        let gathered = g.gather_f32(&data, 2);
        for (j, &id) in g.ids.iter().enumerate() {
            assert_eq!(&gathered[j * 2..j * 2 + 2], &data[id as usize * 2..id as usize * 2 + 2]);
        }
        let codes: Vec<u8> = (0..18).collect(); // 6 rows of width 3
        let gathered = g.gather_u8(&codes, 3);
        for (j, &id) in g.ids.iter().enumerate() {
            assert_eq!(&gathered[j * 3..j * 3 + 3], &codes[id as usize * 3..id as usize * 3 + 3]);
        }
        assert_eq!(g.memory_bytes(), 24);
    }

    #[test]
    fn vectors_land_in_nearest_list() {
        let mut data = Vec::new();
        for c in [0.0f32, 100.0] {
            for i in 0..20 {
                data.push(c + i as f32 * 0.01);
            }
        }
        let mut stats = BuildStats::default();
        let ivf = IvfLists::build(&data, 1, 2, 5, &mut stats);
        // Two clear clusters: each list should be pure.
        for list in &ivf.lists {
            if list.is_empty() {
                continue;
            }
            let first_group = list[0] < 20;
            assert!(list.iter().all(|&id| (id < 20) == first_group));
        }
    }
}
