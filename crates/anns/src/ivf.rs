//! Shared inverted-file (IVF) machinery for IVF_FLAT / IVF_SQ8 / IVF_PQ /
//! SCANN: coarse k-means quantizer plus per-centroid posting lists.

use crate::cost::BuildStats;
use crate::kmeans::KMeans;

/// Coarse quantizer + inverted lists. Each list holds local row ids.
#[derive(Debug, Clone)]
pub struct IvfLists {
    pub quantizer: KMeans,
    pub lists: Vec<Vec<u32>>,
}

impl IvfLists {
    /// Train the coarse quantizer and assign every vector to its list.
    pub fn build(
        vectors: &[f32],
        dim: usize,
        nlist: usize,
        seed: u64,
        stats: &mut BuildStats,
    ) -> IvfLists {
        let n = vectors.len() / dim;
        let quantizer = KMeans::train(vectors, dim, nlist, seed, stats);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); quantizer.k];
        for i in 0..n {
            let v = &vectors[i * dim..(i + 1) * dim];
            let c = quantizer.nearest(v);
            lists[c].push(i as u32);
        }
        stats.train_dims += (n * quantizer.k * dim) as u64; // assignment pass
        IvfLists { quantizer, lists }
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// True when no vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory of the list structure itself (ids + centroids).
    pub fn memory_bytes(&self) -> u64 {
        let ids: usize = self.lists.iter().map(|l| l.len() * 4).sum();
        let centroids = self.quantizer.centroids.len() * 4;
        (ids + centroids) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vectors_assigned_exactly_once() {
        let mut data = Vec::new();
        for i in 0..200 {
            data.push(i as f32);
            data.push((i % 7) as f32);
        }
        let mut stats = BuildStats::default();
        let ivf = IvfLists::build(&data, 2, 8, 3, &mut stats);
        assert_eq!(ivf.len(), 200);
        let mut seen = [false; 200];
        for list in &ivf.lists {
            for &id in list {
                assert!(!seen[id as usize], "id {id} assigned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vectors_land_in_nearest_list() {
        let mut data = Vec::new();
        for c in [0.0f32, 100.0] {
            for i in 0..20 {
                data.push(c + i as f32 * 0.01);
            }
        }
        let mut stats = BuildStats::default();
        let ivf = IvfLists::build(&data, 1, 2, 5, &mut stats);
        // Two clear clusters: each list should be pure.
        for list in &ivf.lists {
            if list.is_empty() {
                continue;
            }
            let first_group = list[0] < 20;
            assert!(list.iter().all(|&id| (id < 20) == first_group));
        }
    }
}
