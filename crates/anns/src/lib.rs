//! Approximate nearest-neighbor search (ANNS) index library.
//!
//! From-scratch Rust implementations of the seven index types Milvus exposes
//! and the VDTuner paper tunes (Table I):
//!
//! | Index       | Family            | Build params          | Search params        |
//! |-------------|-------------------|-----------------------|----------------------|
//! | `FLAT`      | exhaustive        | —                     | —                    |
//! | `IVF_FLAT`  | quantization (IVF)| `nlist`               | `nprobe`             |
//! | `IVF_SQ8`   | quantization      | `nlist`               | `nprobe`             |
//! | `IVF_PQ`    | quantization      | `nlist`, `m`, `nbits` | `nprobe`             |
//! | `HNSW`      | graph             | `M`, `efConstruction` | `ef`                 |
//! | `SCANN`     | quantization      | `nlist`               | `nprobe`, `reorder_k`|
//! | `AUTOINDEX` | heuristic default | —                     | —                    |
//!
//! Every search reports a [`cost::SearchCost`]: deterministic counts of the
//! work performed (full-precision distance dims, quantized dims, PQ table
//! lookups, graph hops). The VDMS simulator turns those counts into latency
//! and QPS through its cost model, which is what makes the reproduction's
//! "search speed" axis deterministic while the *recall* axis is measured for
//! real against exact ground truth.
#![deny(unsafe_code)]

pub mod autoindex;
pub mod cost;
pub mod flat;
pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod ivf_flat;
pub mod ivf_pq;
pub mod ivf_sq8;
pub mod kmeans;
pub mod params;
pub mod scann;

pub use cost::{BuildStats, SearchCost};
pub use index::{AnnIndex, BuildError, VectorIndex};
pub use params::{IndexParams, IndexType, SearchParams};
