//! HNSW: Hierarchical Navigable Small World graph (Malkov & Yashunin).
//!
//! A faithful in-memory implementation: exponentially distributed layer
//! assignment, greedy descent through upper layers, beam search
//! (`efConstruction` / `ef`) on layer 0, bidirectional links pruned to `M`
//! (2·M on layer 0, as in hnswlib and Milvus).

use crate::cost::{BuildStats, SearchCost};
use crate::index::{BuildError, VectorIndex};
use crate::params::{IndexParams, SearchParams};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vecdata::distance::l2_sq;
use vecdata::ground_truth::{Neighbor, TopK};
use vecdata::rng::rng;

/// One graph node: neighbor lists per layer (layer 0 first).
#[derive(Debug, Clone)]
struct Node {
    /// `links[l]` = neighbor ids on layer `l`.
    links: Vec<Vec<u32>>,
}

/// An HNSW graph over a copied vector buffer.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    dim: usize,
    data: Vec<f32>,
    nodes: Vec<Node>,
    entry: u32,
    max_layer: usize,
    m: usize,
}

impl HnswIndex {
    pub fn build(
        vectors: &[f32],
        dim: usize,
        params: &IndexParams,
        seed: u64,
        stats: &mut BuildStats,
    ) -> Result<HnswIndex, BuildError> {
        if params.hnsw_m < 2 {
            return Err(BuildError::InvalidParam("M"));
        }
        if params.ef_construction < 1 {
            return Err(BuildError::InvalidParam("efConstruction"));
        }
        let n = vectors.len() / dim;
        let m = params.hnsw_m;
        let ef_c = params.ef_construction.max(m);
        let level_mult = 1.0 / (m as f64).ln();
        let mut r = rng(seed);

        let mut index = HnswIndex {
            dim,
            data: vectors.to_vec(),
            nodes: Vec::with_capacity(n),
            entry: 0,
            max_layer: 0,
            m,
        };

        for i in 0..n {
            let level = (-(r.gen::<f64>().max(1e-12)).ln() * level_mult).floor() as usize;
            index.insert(i as u32, level, ef_c, stats);
        }
        Ok(index)
    }

    #[inline]
    fn vec_at(&self, id: u32) -> &[f32] {
        &self.data[id as usize * self.dim..(id as usize + 1) * self.dim]
    }

    /// Graph traversal visits nodes in data-dependent order (random access),
    /// so there is no contiguous block to hand to the kernel's batched API;
    /// each per-pair distance still runs on the dispatched SIMD kernel via
    /// `l2_sq`.
    #[inline]
    fn dist(&self, a: &[f32], id: u32, dims: &mut u64) -> f32 {
        *dims += self.dim as u64;
        l2_sq(a, self.vec_at(id))
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Greedy search on one layer starting from `entry`, returning the
    /// closest node found (used for descending the upper layers).
    fn greedy_closest(
        &self,
        query: &[f32],
        entry: u32,
        layer: usize,
        cost: &mut SearchCost,
    ) -> u32 {
        let mut cur = entry;
        let mut cur_d = self.dist(query, cur, &mut cost.graph_dims);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur as usize].links[layer] {
                cost.graph_hops += 1;
                let d = self.dist(query, nb, &mut cost.graph_dims);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer: returns up to `ef` candidates sorted by
    /// ascending distance.
    fn search_layer(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        cost: &mut SearchCost,
    ) -> Vec<Neighbor> {
        let n = self.nodes.len();
        let mut visited = vec![false; n];
        visited[entry as usize] = true;
        let d0 = self.dist(query, entry, &mut cost.graph_dims);

        // Candidates: min-heap by distance. Results: bounded worst-first set.
        let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
        candidates.push(Reverse(Neighbor { id: entry, distance: d0 }));
        let mut results = TopK::new(ef);
        results.push(entry, d0);

        while let Some(Reverse(cand)) = candidates.pop() {
            if cand.distance > results.threshold() {
                break;
            }
            for &nb in &self.nodes[cand.id as usize].links[layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                cost.graph_hops += 1;
                let d = self.dist(query, nb, &mut cost.graph_dims);
                if d < results.threshold() || results.len() < ef {
                    candidates.push(Reverse(Neighbor { id: nb, distance: d }));
                    results.push(nb, d);
                    cost.heap_pushes += 1;
                }
            }
        }
        results.into_sorted()
    }

    /// Insert node `id` with top layer `level`.
    fn insert(&mut self, id: u32, level: usize, ef_c: usize, stats: &mut BuildStats) {
        let node = Node { links: vec![Vec::new(); level + 1] };
        self.nodes.push(node);
        if self.nodes.len() == 1 {
            self.entry = id;
            self.max_layer = level;
            return;
        }

        let query = self.vec_at(id).to_vec();
        let mut build_cost = SearchCost::default();
        let mut cur = self.entry;

        // Descend greedily through layers above `level`.
        let top = self.max_layer;
        let mut layer = top;
        while layer > level {
            cur = self.greedy_closest(&query, cur, layer, &mut build_cost);
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // Connect on each layer from min(level, top) down to 0.
        let mut l = level.min(top);
        loop {
            let found = self.search_layer(&query, cur, ef_c, l, &mut build_cost);
            let m_l = self.max_links(l);
            let selected = self.select_neighbors(&query, &found, m_l, &mut build_cost);
            for &nb in &selected {
                self.nodes[id as usize].links[l].push(nb);
                self.nodes[nb as usize].links[l].push(id);
                // Prune the neighbor if it exceeded its budget.
                if self.nodes[nb as usize].links[l].len() > m_l {
                    self.prune(nb, l, m_l, &mut build_cost);
                }
            }
            if let Some(first) = selected.first() {
                cur = *first;
            }
            if l == 0 {
                break;
            }
            l -= 1;
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = id;
        }
        stats.train_dims += build_cost.f32_dims + build_cost.graph_dims;
    }

    /// The paper's neighbor-selection heuristic (Algorithm 4 in Malkov &
    /// Yashunin): prefer *diverse* neighbors — a candidate is kept only if
    /// it is closer to the base point than to every already-selected
    /// neighbor. Remaining slots are filled with the closest pruned
    /// candidates ("keepPrunedConnections"), which preserves graph
    /// connectivity on clustered data.
    fn select_neighbors(
        &self,
        base: &[f32],
        found: &[Neighbor],
        m: usize,
        cost: &mut SearchCost,
    ) -> Vec<u32> {
        let _ = base;
        let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
        let mut pruned: Vec<Neighbor> = Vec::new();
        for &cand in found {
            if selected.len() >= m {
                break;
            }
            let cand_vec = self.vec_at(cand.id);
            let diverse = selected.iter().all(|s| {
                let d = self.dist(cand_vec, s.id, &mut cost.graph_dims);
                d >= cand.distance
            });
            if diverse {
                selected.push(cand);
            } else {
                pruned.push(cand);
            }
        }
        for cand in pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(cand);
        }
        selected.into_iter().map(|n| n.id).collect()
    }

    /// Re-prune a node's neighbor list to its budget with the same
    /// diversity heuristic used at insertion time.
    fn prune(&mut self, id: u32, layer: usize, m: usize, cost: &mut SearchCost) {
        let base = self.vec_at(id).to_vec();
        let links = &self.nodes[id as usize].links[layer];
        let mut scored: Vec<Neighbor> = links
            .iter()
            .map(|&nb| Neighbor { id: nb, distance: self.dist(&base, nb, &mut cost.graph_dims) })
            .collect();
        scored.sort_unstable();
        let kept = self.select_neighbors(&base, &scored, m, cost);
        self.nodes[id as usize].links[layer] = kept;
    }
}

impl VectorIndex for HnswIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let mut cur = self.entry;
        let mut layer = self.max_layer;
        while layer > 0 {
            cur = self.greedy_closest(query, cur, layer, cost);
            layer -= 1;
        }
        let ef = sp.ef.max(sp.top_k);
        let mut found = self.search_layer(query, cur, ef, 0, cost);
        found.truncate(sp.top_k);
        found
    }

    fn memory_bytes(&self) -> u64 {
        let links: usize = self
            .nodes
            .iter()
            .map(|n| n.links.iter().map(|l| l.len() * 4 + 24).sum::<usize>())
            .sum();
        (self.data.len() * 4 + links) as u64
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecdata::{ground_truth, DatasetKind, DatasetSpec};

    fn build_tiny(m: usize, ef_c: usize) -> (vecdata::Dataset, HnswIndex) {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { hnsw_m: m, ef_construction: ef_c, ..Default::default() }
            .sanitized(ds.dim(), 10);
        let mut stats = BuildStats::default();
        let idx = HnswIndex::build(ds.raw(), ds.dim(), &params, 5, &mut stats).unwrap();
        (ds, idx)
    }

    fn mean_recall(ds: &vecdata::Dataset, idx: &HnswIndex, ef: usize) -> f64 {
        let gt = ground_truth(ds, 10);
        let sp = SearchParams { nprobe: 0, ef, reorder_k: 0, top_k: 10 };
        let mut acc = 0.0;
        for qi in 0..ds.n_queries() {
            let mut cost = SearchCost::default();
            let ids: Vec<u32> =
                idx.search(ds.query(qi), &sp, &mut cost).iter().map(|n| n.id).collect();
            acc += vecdata::ground_truth::recall(&ids, &gt[qi]);
        }
        acc / ds.n_queries() as f64
    }

    #[test]
    fn high_ef_gives_high_recall() {
        let (ds, idx) = build_tiny(16, 200);
        let r = mean_recall(&ds, &idx, 256);
        assert!(r > 0.95, "HNSW recall at ef=256 was {r}");
    }

    #[test]
    fn recall_monotone_in_ef() {
        let (ds, idx) = build_tiny(16, 200);
        let lo = mean_recall(&ds, &idx, 10);
        let hi = mean_recall(&ds, &idx, 200);
        assert!(hi >= lo, "recall should not decrease with ef: {lo} -> {hi}");
    }

    #[test]
    fn cost_grows_with_ef() {
        let (ds, idx) = build_tiny(16, 100);
        let mut c_lo = SearchCost::default();
        let mut c_hi = SearchCost::default();
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 0, ef: 10, reorder_k: 0, top_k: 10 },
            &mut c_lo,
        );
        idx.search(
            ds.query(0),
            &SearchParams { nprobe: 0, ef: 300, reorder_k: 0, top_k: 10 },
            &mut c_hi,
        );
        assert!(c_hi.graph_dims > c_lo.graph_dims);
        assert!(c_hi.graph_hops > c_lo.graph_hops);
    }

    #[test]
    fn degree_bounded() {
        let (_, idx) = build_tiny(8, 64);
        for (i, node) in idx.nodes.iter().enumerate() {
            for (l, links) in node.links.iter().enumerate() {
                let cap = if l == 0 { 16 } else { 8 };
                assert!(links.len() <= cap, "node {i} layer {l} degree {}", links.len());
            }
        }
    }

    #[test]
    fn links_are_bidirectional_enough_to_reach_all() {
        // Graph connectivity: from the entry point, a BFS on layer 0 should
        // reach nearly every node (HNSW guarantees connectivity in practice).
        let (_, idx) = build_tiny(12, 128);
        let n = idx.nodes.len();
        let mut seen = vec![false; n];
        let mut queue = vec![idx.entry];
        seen[idx.entry as usize] = true;
        let mut reached = 1;
        while let Some(u) = queue.pop() {
            for &v in &idx.nodes[u as usize].links[0] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    reached += 1;
                    queue.push(v);
                }
            }
        }
        assert!(reached as f64 / n as f64 > 0.99, "only {reached}/{n} reachable");
    }

    #[test]
    fn rejects_tiny_m() {
        let ds = DatasetSpec::tiny(DatasetKind::Glove).generate();
        let params = IndexParams { hnsw_m: 1, ..Default::default() };
        let mut stats = BuildStats::default();
        assert!(HnswIndex::build(ds.raw(), ds.dim(), &params, 0, &mut stats).is_err());
    }
}
