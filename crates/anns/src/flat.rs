//! FLAT: exhaustive exact search (the paper's recall upper bound).

use crate::cost::{BuildStats, SearchCost};
use crate::index::VectorIndex;
use crate::params::SearchParams;
use vecdata::ground_truth::{TopK, SCAN_BLOCK_ROWS};
use vecdata::kernel;
use vecdata::Neighbor;

/// Brute-force index: stores the raw vectors and scans all of them.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    data: Vec<f32>,
}

impl FlatIndex {
    /// "Building" FLAT is a copy; Milvus likewise stores raw segments.
    pub fn build(vectors: &[f32], dim: usize, stats: &mut BuildStats) -> FlatIndex {
        stats.train_dims += vectors.len() as u64; // ingest copy cost
        FlatIndex { dim, data: vectors.to_vec() }
    }
}

impl VectorIndex for FlatIndex {
    fn search(&self, query: &[f32], sp: &SearchParams, cost: &mut SearchCost) -> Vec<Neighbor> {
        // Exhaustive block scan through the dispatched kernel: same
        // distances and push order as the old per-row loop, so results are
        // bit-identical; the bulk cost below equals the per-row charges.
        let mut top = TopK::new(sp.top_k);
        let kern = kernel::active();
        let mut scores = Vec::with_capacity(SCAN_BLOCK_ROWS);
        let mut base = 0usize;
        for block in self.data.chunks(SCAN_BLOCK_ROWS * self.dim) {
            kern.l2_sq_block(query, block, self.dim, &mut scores);
            for (j, &d) in scores.iter().enumerate() {
                top.push((base + j) as u32, d);
            }
            base += block.len() / self.dim;
        }
        cost.f32_dims += (self.len() * self.dim) as u64;
        cost.heap_pushes += self.len() as u64;
        top.into_sorted()
    }

    fn memory_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IndexParams;

    #[test]
    fn flat_is_exact() {
        // 1-D points 0..10; query at 3.2 → nearest are 3, 4 (order matters).
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let mut stats = BuildStats::default();
        let idx = FlatIndex::build(&data, 1, &mut stats);
        let sp = SearchParams::from_params(&IndexParams::default(), 2);
        let mut cost = SearchCost::default();
        let res = idx.search(&[3.2], &sp, &mut cost);
        assert_eq!(res[0].id, 3);
        assert_eq!(res[1].id, 4);
        assert_eq!(cost.f32_dims, 10);
    }

    #[test]
    fn memory_is_raw_size() {
        let data = vec![0.0f32; 32 * 4];
        let mut stats = BuildStats::default();
        let idx = FlatIndex::build(&data, 4, &mut stats);
        assert_eq!(idx.memory_bytes(), (32 * 4 * 4) as u64);
        assert_eq!(idx.len(), 32);
    }
}
