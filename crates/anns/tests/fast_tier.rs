//! Integration contract for the fast kernel tier at the index level:
//!
//! 1. **Pinned recall parity on GloVe.** The symmetric-int8 and 4-bit ADC
//!    LUT scoring paths trade bit-identity for speed, but recall@10 must
//!    stay within a pinned delta of the exact tier on the GloVe-shaped
//!    tiny dataset (exact-tier exhaustive SQ8 recall is 0.984 here).
//! 2. **Thread-count determinism.** A fast-tier index returns bit-identical
//!    results whether queries run on one thread or many — the relaxed
//!    ordering is fixed per (kernel, layout), never per schedule.
//!
//! Both properties hold regardless of `VDTUNER_KERNEL`, because the fast
//! tier is forced on explicitly via `set_fast_tier` here.

use anns::ivf_pq::IvfPqIndex;
use anns::ivf_sq8::IvfSq8Index;
use anns::scann::ScannIndex;
use anns::{BuildStats, IndexParams, SearchCost, SearchParams, VectorIndex};
use vecdata::ground_truth::{ground_truth, recall};
use vecdata::{Dataset, DatasetKind, DatasetSpec};

fn glove() -> Dataset {
    DatasetSpec::tiny(DatasetKind::Glove).generate()
}

fn mean_recall(idx: &dyn VectorIndex, ds: &Dataset, sp: &SearchParams) -> f64 {
    let gt = ground_truth(ds, sp.top_k);
    let mut acc = 0.0;
    for qi in 0..ds.n_queries() {
        let mut cost = SearchCost::default();
        let ids: Vec<u32> = idx.search(ds.query(qi), sp, &mut cost).iter().map(|n| n.id).collect();
        acc += recall(&ids, &gt[qi]);
    }
    acc / ds.n_queries() as f64
}

/// Recall@10 delta between the exact and fast tiers of the same SQ8 index,
/// pinned: the symmetric shared-scale scan loses at most 0.02 recall on
/// GloVe (observed: exact 0.984, fast 0.975).
#[test]
fn sq8_fast_tier_recall_delta_is_pinned_on_glove() {
    let ds = glove();
    let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
    let mut stats = BuildStats::default();
    let mut idx = IvfSq8Index::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
    let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 0, top_k: 10 };

    idx.set_fast_tier(false);
    let exact = mean_recall(&idx, &ds, &sp);
    idx.set_fast_tier(true);
    let fast = mean_recall(&idx, &ds, &sp);

    assert!(exact > 0.97, "exact-tier exhaustive SQ8 recall regressed: {exact}");
    assert!(
        fast >= exact - 0.02,
        "fast-tier recall delta exceeds pinned tolerance: exact {exact}, fast {fast}"
    );
}

/// Same pinned-delta contract for the 4-bit LUT stage-1 in SCANN; exact
/// reranking is shared, so with a generous reorder budget the tiers must
/// land within a small delta.
#[test]
fn scann_fast_tier_recall_delta_is_pinned_on_glove() {
    let ds = glove();
    let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
    let mut stats = BuildStats::default();
    let mut idx = ScannIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
    let sp = SearchParams { nprobe: 16, ef: 0, reorder_k: 200, top_k: 10 };

    idx.set_fast_tier(false);
    let exact = mean_recall(&idx, &ds, &sp);
    idx.set_fast_tier(true);
    let fast = mean_recall(&idx, &ds, &sp);

    assert!(
        fast >= exact - 0.02,
        "SCANN fast stage-1 recall delta exceeds pinned tolerance: exact {exact}, fast {fast}"
    );
}

/// Searches against a fast-tier index are a pure function of the query:
/// running the query set on 1 thread and concurrently on 4 threads yields
/// bit-identical (id, distance) lists. Covers the thread-local scratch
/// reuse in the PQ/SCANN paths and the symmetric SQ8 scan.
#[test]
fn fast_tier_search_is_thread_count_invariant() {
    let ds = glove();
    let params = IndexParams { nlist: 16, ..Default::default() }.sanitized(ds.dim(), 10);
    let sp = SearchParams { nprobe: 8, ef: 0, reorder_k: 0, top_k: 10 };

    let mut stats = BuildStats::default();
    let mut sq8 = IvfSq8Index::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
    sq8.set_fast_tier(true);
    let mut pq = IvfPqIndex::build(ds.raw(), ds.dim(), &params, 1, &mut stats).unwrap();
    pq.set_fast_tier(true);

    let indexes: [&(dyn VectorIndex + Sync); 2] = [&sq8, &pq];
    for idx in indexes {
        let serial: Vec<Vec<(u32, u32)>> = (0..ds.n_queries())
            .map(|qi| {
                let mut cost = SearchCost::default();
                idx.search(ds.query(qi), &sp, &mut cost)
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let (ds, serial) = (&ds, &serial);
                    scope.spawn(move || {
                        // Stagger starting offsets so threads interleave
                        // different queries at the same wall-clock time.
                        for step in 0..ds.n_queries() {
                            let qi = (t * 7 + step) % ds.n_queries();
                            let mut cost = SearchCost::default();
                            let got: Vec<(u32, u32)> = idx
                                .search(ds.query(qi), &sp, &mut cost)
                                .iter()
                                .map(|n| (n.id, n.distance.to_bits()))
                                .collect();
                            assert_eq!(got, serial[qi], "thread {t} query {qi} diverged");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}
