//! The replication contracts, stated across crates:
//!
//! * `replicas = 1` is bit-identical to the unreplicated
//!   `ShardedCollection` for any shard count (by property),
//! * both routing policies return identical result ids — and therefore
//!   identical recall — because every replica group hosts the same data,
//! * an 18-dimensional tuning run with the replication dimension frozen
//!   at one copy reproduces the 17-dimensional topology run bit for bit,
//! * replica-aware evaluation diverges honestly on cost: memory per copy,
//!   staleness under tight `gracefulTime`, read-slot scaling.

use proptest::prelude::*;
use vdtuner::core::{SpaceSpec, TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::vdms::cluster::ShardedCollection;
use vdtuner::vdms::system_params::SystemParams;
use vdtuner::workload::{evaluate_sharded, Evaluator, ServingBackend, ServingSpec};

fn multi_segment_workload() -> Workload {
    let spec = DatasetSpec { n: 4_200, ..DatasetSpec::tiny(DatasetKind::Glove) };
    Workload::prepare(spec, 10)
}

/// A config whose layout actually seals several segments at tiny scale.
fn multi_segment_config() -> VdmsConfig {
    let mut cfg = VdmsConfig::default_for(IndexType::IvfFlat);
    cfg.system = SystemParams {
        segment_max_size_mb: 64.0,
        segment_seal_proportion: 1.0,
        ..Default::default()
    };
    cfg
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One replica is the unreplicated cluster, bit for bit — results,
    /// per-node costs, memory, build time — for shards 1..=4 and any seed.
    #[test]
    fn one_replica_is_bitwise_unreplicated(shards in 1usize..=4, seed in 0u64..64) {
        let w = multi_segment_workload();
        let cfg = multi_segment_config().sanitized(w.dataset.dim(), w.top_k);
        let plain = ShardedCollection::load(
            &w.dataset, &cfg, seed, ClusterSpec::new(shards)).unwrap();
        let replicated = ShardedCollection::load(
            &w.dataset, &cfg, seed, ClusterSpec::replicated(shards, 1)).unwrap();
        prop_assert_eq!(replicated.nodes(), shards);
        prop_assert_eq!(replicated.shard_memory(), plain.shard_memory());
        prop_assert_eq!(
            replicated.total_memory_gib().to_bits(),
            plain.total_memory_gib().to_bits()
        );
        let (rc, rr) = replicated.run_queries(w.top_k);
        let (pc, pr) = plain.run_queries(w.top_k);
        prop_assert_eq!(rr, pr);
        prop_assert_eq!(rc, pc);
        // And through the whole evaluation pipeline.
        let a = evaluate_sharded(&w, &cfg, seed, ClusterSpec::new(shards));
        let b = evaluate_sharded(&w, &cfg, seed, ClusterSpec::replicated(shards, 1));
        prop_assert_eq!(a.qps.to_bits(), b.qps.to_bits());
        prop_assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        prop_assert_eq!(a.memory_gib.to_bits(), b.memory_gib.to_bits());
        prop_assert_eq!(a.simulated_secs.to_bits(), b.simulated_secs.to_bits());
    }

    /// Routing never changes what a query returns: JSQ and seeded-random
    /// routed clusters produce identical result ids (and so identical
    /// recall) for any shard count, replication factor and seed.
    #[test]
    fn routing_policies_return_identical_results(
        shards in 1usize..=3,
        replicas in 1usize..=3,
        route_seed in 0u64..1_000,
        seed in 0u64..64,
    ) {
        let w = multi_segment_workload();
        let cfg = multi_segment_config().sanitized(w.dataset.dim(), w.top_k);
        let base = ClusterSpec {
            shard_budget_gib: vdtuner::vdms::collection::MEMORY_BUDGET_GIB,
            ..ClusterSpec::replicated(shards, replicas)
        };
        let jsq = ShardedCollection::load(
            &w.dataset, &cfg, seed,
            base.with_routing(RoutingPolicy::JoinShortestQueue)).unwrap();
        let rand = ShardedCollection::load(
            &w.dataset, &cfg, seed,
            base.with_routing(RoutingPolicy::Random { seed: route_seed })).unwrap();
        let (_, jr) = jsq.run_queries(w.top_k);
        let (_, rr) = rand.run_queries(w.top_k);
        prop_assert_eq!(&jr, &rr);
        // Recall is therefore routing-invariant too.
        prop_assert_eq!(
            w.mean_recall(&jr).to_bits(),
            w.mean_recall(&rr).to_bits()
        );
    }
}

/// Bit-level fingerprint of a tuning history: the base configuration (the
/// deployment requests are compared separately) plus the exact feedback.
fn fingerprint(out: &vdtuner::core::TuningOutcome) -> Vec<(String, u64, u64, u64, bool)> {
    out.observations
        .iter()
        .map(|o| {
            let base = VdmsConfig { replicas: None, ..o.config };
            (base.summary(), o.qps.to_bits(), o.recall.to_bits(), o.memory_gib.to_bits(), o.failed)
        })
        .collect()
}

/// Acceptance gate for the 18th dimension: tuning the 18-dimensional space
/// with `replicas` frozen at one copy (over the replication-enabled
/// topology backend) yields a history bit-identical to the 17-dimensional
/// topology spec over the plain topology backend — the extra constant
/// coordinate changes no GP prediction, no acquisition value, no
/// evaluation.
#[test]
fn frozen_replication_dimension_reproduces_topology_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let narrow = VdTuner::with_space(small_options(), SpaceSpec::with_topology(4), 42)
        .run_on(TopologyBackend::new(&w, 4), 12);
    let frozen =
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(4).with_replication(1), 42)
            .run_on(TopologyBackend::with_replication(&w, 4, 1), 12);

    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // The frozen run really did carry the 18th dimension end to end.
    for o in &frozen.observations {
        assert_eq!(o.config.replicas, Some(1));
    }
    for o in &narrow.observations {
        assert_eq!(o.config.replicas, None);
    }
}

/// Same contract under batched (kriging-believer) proposals, and under
/// serving composition — the serving phase of a one-replica candidate is
/// the pre-replication serving phase bit for bit.
#[test]
fn frozen_replication_reproduces_serving_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let spec = ServingSpec { arrival_qps: 300.0, requests: 300, ..Default::default() };
    let narrow = VdTuner::with_space(small_options(), SpaceSpec::with_topology(2), 7)
        .run_batched_on(ServingBackend::new(&w, TopologyBackend::new(&w, 2), spec), 10, 3);
    let frozen =
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(2).with_replication(1), 7)
            .run_batched_on(
                ServingBackend::new(&w, TopologyBackend::with_replication(&w, 2, 1), spec),
                10,
                3,
            );
    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // Serving stats (p99 included) agree bitwise wherever both exist.
    for (a, b) in narrow.observations.iter().zip(&frozen.observations) {
        match (a.serving, b.serving) {
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.p99_latency_secs.to_bits(), sb.p99_latency_secs.to_bits());
                assert_eq!(sa.goodput_qps.to_bits(), sb.goodput_qps.to_bits());
            }
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    }
}

/// Co-tuning end to end: with a real replica range the tuner proposes
/// valid shapes, the evaluator accepts every candidate, and the budget
/// explores more than one replication factor.
#[test]
fn co_tuning_explores_replication_factors() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let mut tuner =
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(4).with_replication(4), 3);
    let out = tuner.run_on(TopologyBackend::with_replication(&w, 4, 4), 16);
    assert_eq!(out.observations.len(), 16);
    let mut factors = std::collections::BTreeSet::new();
    for o in &out.observations {
        let r = o.config.replicas.expect("co-tuning candidates always request a factor");
        assert!((1..=4).contains(&r), "{}", o.config.summary());
        factors.insert(r);
    }
    assert!(factors.len() > 1, "the tuner must explore the replication axis: {factors:?}");
    assert!(out.observations.iter().any(|o| !o.failed));
}

/// The evaluator cache keys replication: two candidates differing only in
/// the replication factor are distinct entries with distinct memory.
#[test]
fn replica_request_is_part_of_the_cache_key() {
    let w = multi_segment_workload();
    let mut ev = Evaluator::with_backend(TopologyBackend::with_replication(&w, 2, 4), 1);
    let mut cfg = multi_segment_config();
    cfg.shards = Some(2);
    cfg.replicas = Some(1);
    let one = ev.observe(&cfg, 0.0);
    cfg.replicas = Some(2);
    let two = ev.observe(&cfg, 0.0);
    assert!(!one.failed && !two.failed);
    assert!(
        two.memory_gib > one.memory_gib * 1.8,
        "replication pays per copy: {} vs {}",
        two.memory_gib,
        one.memory_gib
    );
    assert_eq!(ev.len(), 2);
}
