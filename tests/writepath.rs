//! The write-path contracts, stated across crates:
//!
//! * a zero write rate degrades the mixed read/write serving simulator to
//!   the read-only one bit for bit, for any write knobs (by property),
//! * the mixed simulator is bit-identical on 1 vs 4 rayon threads,
//! * WAL LSNs are assigned in strictly increasing admission order and
//!   durability is monotone — and backpressure parks or sheds at the
//!   door, never dropping an insert it accepted (by property, against a
//!   synthetic commit schedule),
//! * a 22-dimensional tuning run with the three write dimensions frozen
//!   at [`WriteKnobs::DEFAULT`] reproduces the 19-dimensional pinning run
//!   bit for bit — serial, batched, and under mixed serving composition.

use proptest::prelude::*;
use vdtuner::core::{SpaceSpec, TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::vdms::system_params::SystemParams;
use vdtuner::vdms::writepath::{Admission, WalSim, WriteKnobs};
use vdtuner::vdms::{CostModel, PinningPolicy};
use vdtuner::workload::serving::{
    simulate_pinned, simulate_pinned_mixed, simulate_replicated, simulate_replicated_mixed,
};
use vdtuner::workload::{TopologyBackend, WriteStats};

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

fn knobs_from(batch: usize, interval: f64, seal: usize) -> WriteKnobs {
    WriteKnobs { wal_batch_rows: batch, flush_interval_secs: interval, seal_rows: seal }.sanitized()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Write-rate→0 contract: with no inserts offered, the mixed
    /// simulators are the read-only ones bit for bit — whatever the
    /// requested knobs, replica count, policy or seed.
    #[test]
    fn zero_write_rate_is_bitwise_the_read_only_simulator(
        batch in 1usize..1024,
        interval in 0.005f64..0.3,
        seal in 64usize..4096,
        replicas in 1usize..=3,
        policy_ord in 0usize..4,
        seed in 0u64..64,
    ) {
        let knobs = knobs_from(batch, interval, seal);
        let policy = PinningPolicy::from_ordinal(policy_ord);
        let model = CostModel::default();
        let sys = SystemParams { max_read_concurrency: 8, ..Default::default() };
        let spec = ServingSpec { arrival_qps: 900.0, requests: 300, ..Default::default() };
        prop_assert!(spec.insert_fraction <= 0.0, "read-only is the default scenario");
        let mixed =
            simulate_replicated_mixed(&model, &sys, 0.004, &spec, seed, replicas, knobs);
        let read_only = simulate_replicated(&model, &sys, 0.004, &spec, seed, replicas);
        prop_assert_eq!(&mixed, &read_only);
        prop_assert_eq!(mixed.writes, WriteStats::default());
        let pinned_mixed = simulate_pinned_mixed(
            &model, &sys, 0.004, &spec, seed, replicas, policy, 10, knobs,
        );
        let pinned = simulate_pinned(&model, &sys, 0.004, &spec, seed, replicas, policy, 10);
        prop_assert_eq!(pinned_mixed, pinned);
    }

    /// The mixed simulator is a pure speedup: for any insert share,
    /// policy and seed, the event trace (write ledger included) is
    /// bit-identical on 1 vs 4 rayon threads.
    #[test]
    fn mixed_serving_trace_is_thread_count_invariant(
        insert_fraction in 0.1f64..1.5,
        policy_ord in 0usize..4,
        replicas in 1usize..=2,
        seed in 0u64..64,
    ) {
        let policy = PinningPolicy::from_ordinal(policy_ord);
        let model = CostModel::default();
        let sys = SystemParams { max_read_concurrency: 8, ..Default::default() };
        let spec = ServingSpec { arrival_qps: 1_200.0, requests: 300, ..Default::default() }
            .with_inserts(insert_fraction);
        let knobs = WriteKnobs { wal_batch_rows: 32, ..WriteKnobs::DEFAULT };
        let run = |threads: usize| {
            with_threads(threads, || {
                simulate_pinned_mixed(
                    &model, &sys, 0.004, &spec, seed, replicas, policy, 10, knobs,
                )
            })
        };
        let one = run(1);
        prop_assert_eq!(&one, &run(4));
        prop_assert!(one.writes.offered > 0);
        prop_assert_eq!(one.writes.accepted + one.writes.shed, one.writes.offered);
    }

    /// Drive the WAL state machine through a synthetic admission/commit
    /// schedule: LSNs are handed out in strictly increasing order
    /// (parked inserts included), durability is monotone in both LSN and
    /// time, and every accepted insert is durable once drained —
    /// backpressure parks and sheds at the door, it never drops.
    #[test]
    fn wal_lsns_are_monotone_and_backpressure_never_drops(
        offers in 1usize..400,
        batch in 1usize..64,
        seal in 1usize..256,
        park_capacity in 0usize..24,
        commit_every in 1usize..37,
    ) {
        let knobs = knobs_from(batch, 0.05, seal);
        let mut wal = WalSim::new(knobs, park_capacity);
        let mut now = 0.0f64;
        let mut last_assigned = 0u64;
        let mut durable_seen = 0u64;
        let mut assigned = 0usize;
        let mut parked_total = 0usize;
        let complete = |wal: &mut WalSim,
                        job: vdtuner::vdms::writepath::FlushJob,
                        now: f64,
                        last_assigned: &mut u64,
                        durable_seen: &mut u64,
                        assigned: &mut usize| {
            let upto = job.upto_lsn;
            wal.record_flush(job, now, now + 1e-4);
            let done = wal.flush_done(upto, now + 1e-4);
            // Un-parked inserts get the next LSNs (half-open range).
            if done.admitted.end > done.admitted.start {
                prop_assert_eq!(done.admitted.start, *last_assigned + 1);
                *last_assigned = done.admitted.end - 1;
            }
            *assigned += (done.admitted.end - done.admitted.start) as usize;
            prop_assert!(wal.durable_lsn() >= *durable_seen, "durability is monotone");
            *durable_seen = wal.durable_lsn();
            Ok(())
        };
        for i in 0..offers {
            now += 1e-3;
            match wal.offer_insert(now) {
                Admission::Admitted { lsn } => {
                    // LSNs are assigned in admission order.
                    prop_assert_eq!(lsn, last_assigned + 1);
                    last_assigned = lsn;
                    assigned += 1;
                }
                Admission::Parked => parked_total += 1,
                Admission::Shed => {}
            }
            if i % commit_every == commit_every - 1 {
                while let Some(job) = wal.full_batch_job() {
                    complete(&mut wal, job, now, &mut last_assigned, &mut durable_seen, &mut assigned)?;
                }
            }
        }
        // End-of-run drain: tick until nothing is pending or parked.
        while let Some(job) = wal.tick_job() {
            now += 1e-3;
            complete(&mut wal, job, now, &mut last_assigned, &mut durable_seen, &mut assigned)?;
        }
        prop_assert!(wal.drained(), "every accepted insert became durable");
        // Every offer was parked or shed at the door, never lost.
        prop_assert_eq!(wal.accepted() + wal.shed(), offers);
        prop_assert_eq!(wal.durable_lsn() as usize, wal.accepted());
        prop_assert!(parked_total >= wal.parked());
        prop_assert!(assigned <= wal.accepted());
        // The flush log answers durability monotonically in LSN.
        let mut prev = 0.0f64;
        for lsn in 1..=wal.last_lsn() {
            let t = wal.durable_time_of(lsn).expect("drained WAL covers every LSN");
            prop_assert!(t >= prev, "durable_time_of is monotone");
            prev = t;
        }
    }
}

/// Bit-level fingerprint of a tuning history: the base configuration (the
/// write-path request is compared separately) plus the exact feedback.
fn fingerprint(out: &vdtuner::core::TuningOutcome) -> Vec<(String, u64, u64, u64, bool)> {
    out.observations
        .iter()
        .map(|o| {
            let base = VdmsConfig { writepath: None, ..o.config };
            (base.summary(), o.qps.to_bits(), o.recall.to_bits(), o.memory_gib.to_bits(), o.failed)
        })
        .collect()
}

/// Acceptance gate for dimensions 20–22: tuning the 22-dimensional space
/// with the write knobs frozen at the defaults (over the write-path
/// topology backend) yields a history bit-identical to the 19-dimensional
/// pinning spec over the plain pinning backend — the extra constant
/// coordinates change no GP prediction, no acquisition value, no
/// evaluation.
#[test]
fn frozen_write_knobs_reproduce_pinning_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let space19 = || SpaceSpec::with_topology(4).with_replication(2).with_pinning();
    let narrow = VdTuner::with_space(small_options(), space19(), 42)
        .run_on(TopologyBackend::with_pinning(&w, 4, 2), 12);
    let frozen = VdTuner::with_space(
        small_options(),
        space19().with_pinned_writepath(WriteKnobs::DEFAULT),
        42,
    )
    .run_on(TopologyBackend::with_writepath(&w, 4, 2), 12);

    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // The frozen run really did carry the write dimensions end to end.
    for o in &frozen.observations {
        assert_eq!(o.config.writepath, Some(WriteKnobs::DEFAULT));
    }
    for o in &narrow.observations {
        assert_eq!(o.config.writepath, None);
    }
}

/// Same contract under batched (kriging-believer) proposals and *mixed*
/// serving composition — with real insert traffic in every evaluation, a
/// default-knobs candidate's serving phase is the no-request serving
/// phase bit for bit, write ledger included.
#[test]
fn frozen_write_knobs_reproduce_mixed_serving_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let spec =
        ServingSpec { arrival_qps: 300.0, requests: 300, ..Default::default() }.with_inserts(0.5);
    let space19 = || SpaceSpec::with_topology(2).with_replication(2).with_pinning();
    let narrow = VdTuner::with_space(small_options(), space19(), 7).run_batched_on(
        ServingBackend::new(&w, TopologyBackend::with_pinning(&w, 2, 2), spec),
        10,
        3,
    );
    let frozen = VdTuner::with_space(
        small_options(),
        space19().with_pinned_writepath(WriteKnobs::DEFAULT),
        7,
    )
    .run_batched_on(
        ServingBackend::new(&w, TopologyBackend::with_writepath(&w, 2, 2), spec),
        10,
        3,
    );
    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // Serving stats (write ledger included) agree bitwise wherever both
    // exist — and the mixed phase really offered inserts.
    let mut saw_writes = false;
    for (a, b) in narrow.observations.iter().zip(&frozen.observations) {
        match (a.serving, b.serving) {
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.p99_latency_secs.to_bits(), sb.p99_latency_secs.to_bits());
                assert_eq!(sa.goodput_qps.to_bits(), sb.goodput_qps.to_bits());
                assert_eq!(sa.writes, sb.writes);
                saw_writes |= sa.writes.offered > 0;
            }
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    }
    assert!(saw_writes, "the mixed spec must actually exercise the write path");
}

/// Co-tuning end to end: with the write knobs live the tuner proposes
/// valid knob settings, the evaluator accepts every candidate, and the
/// budget explores more than one group-commit batch size.
#[test]
fn co_tuning_explores_write_knobs() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let mut tuner = VdTuner::with_space(
        small_options(),
        SpaceSpec::with_topology(4).with_replication(2).with_pinning().with_writepath(),
        3,
    );
    let out = tuner.run_on(TopologyBackend::with_writepath(&w, 4, 2), 16);
    assert_eq!(out.observations.len(), 16);
    let mut batches = std::collections::BTreeSet::new();
    for o in &out.observations {
        let k = o.config.writepath.expect("co-tuning candidates always request write knobs");
        let k = k.sanitized();
        assert_eq!(k, o.config.writepath.unwrap(), "proposals are already sanitized");
        batches.insert(k.wal_batch_rows);
    }
    assert!(batches.len() > 1, "the tuner must explore the write axis: {batches:?}");
    assert!(out.observations.iter().any(|o| !o.failed));
}
