//! Cross-crate integration tests: dataset → VDMS collection → search →
//! measurement, spanning `vecdata`, `anns`, `vdms` and `workload`.

use vdtuner::anns::params::IndexType;
use vdtuner::prelude::*;
use vdtuner::vdms::system_params::SystemParams;
use vdtuner::vecdata::DatasetSpec as Spec;
use vdtuner::workload::evaluate;

fn tiny_workload() -> Workload {
    Workload::prepare(Spec::tiny(DatasetKind::Glove), 10)
}

#[test]
fn every_index_type_serves_the_same_workload() {
    let w = tiny_workload();
    for it in IndexType::ALL {
        let out = evaluate(&w, &VdmsConfig::default_for(it), 7);
        assert!(out.is_ok(), "{it}: {:?}", out.failure);
        assert!(out.qps > 0.0, "{it}");
        assert!(out.recall > 0.2 && out.recall <= 1.0, "{it}: recall {}", out.recall);
        assert!(out.memory_gib >= 1.0, "{it}");
    }
}

#[test]
fn recall_speed_conflict_exists() {
    // The core premise (Challenge 2): some configuration is faster than
    // FLAT, and FLAT has better recall than some faster configuration.
    let w = tiny_workload();
    let mut sealed = VdmsConfig::default_for(IndexType::Flat);
    sealed.system.segment_max_size_mb = 64.0;
    sealed.system.segment_seal_proportion = 0.5;
    let flat = evaluate(&w, &sealed, 7);
    let mut fast_cfg = sealed;
    fast_cfg.index_type = IndexType::IvfPq;
    fast_cfg.index.nprobe = 1;
    let fast = evaluate(&w, &fast_cfg, 7);
    assert!(fast.qps > flat.qps, "quantized probe-1 must be faster than FLAT");
    assert!(flat.recall > fast.recall, "FLAT must have better recall");
}

#[test]
fn system_params_change_performance_without_touching_the_index() {
    let w = tiny_workload();
    let base = VdmsConfig::default_for(IndexType::IvfFlat);
    let a = evaluate(&w, &base, 7);
    let mut constrained = base;
    constrained.system.max_read_concurrency = 1;
    let b = evaluate(&w, &constrained, 7);
    assert!(b.qps < a.qps * 0.5, "read concurrency 1 must throttle QPS");
    assert_eq!(a.recall, b.recall, "recall must not depend on concurrency");
}

#[test]
fn growing_tail_tradeoff() {
    // All-growing layout: exact recall, brute-force speed. Sealed layout:
    // faster, recall may drop. This is the segment-level interdependence
    // behind the paper's Figure 1.
    let w = tiny_workload();
    let mut growing = VdmsConfig::default_for(IndexType::IvfSq8);
    growing.system = SystemParams {
        segment_max_size_mb: 2048.0,
        segment_seal_proportion: 1.0,
        insert_buf_size_mb: 2048.0,
        ..Default::default()
    };
    let g = evaluate(&w, &growing, 7);
    assert!(g.recall > 0.999, "all-growing must be exact, got {}", g.recall);

    let mut sealed = growing;
    sealed.system.segment_max_size_mb = 64.0;
    sealed.system.segment_seal_proportion = 0.5;
    sealed.index.nprobe = 2;
    let s = evaluate(&w, &sealed, 7);
    assert!(s.qps > g.qps, "indexed search must beat brute force");
    assert!(s.recall < 1.0, "aggressive probing must cost recall");
}

#[test]
fn memory_accounting_responds_to_knobs() {
    let w = tiny_workload();
    let small = evaluate(
        &w,
        &VdmsConfig {
            system: SystemParams { insert_buf_size_mb: 16.0, ..Default::default() },
            ..VdmsConfig::default_config()
        },
        7,
    );
    let big = evaluate(
        &w,
        &VdmsConfig {
            system: SystemParams { insert_buf_size_mb: 2048.0, ..Default::default() },
            ..VdmsConfig::default_config()
        },
        7,
    );
    assert!(big.memory_gib > small.memory_gib + 1.0);
}

#[test]
fn failed_configs_are_reported_not_panicked() {
    let w = tiny_workload();
    let mut bad = VdmsConfig::default_config();
    bad.system.graceful_time_ms = 0.0;
    bad.system.insert_buf_size_mb = 2048.0;
    let out = evaluate(&w, &bad, 7);
    assert!(!out.is_ok());
    assert!(out.simulated_secs > 0.0);
}

#[test]
fn deterministic_across_identical_runs() {
    let w1 = tiny_workload();
    let w2 = tiny_workload();
    let cfg = VdmsConfig::default_for(IndexType::Scann);
    assert_eq!(evaluate(&w1, &cfg, 9), evaluate(&w2, &cfg, 9));
}
