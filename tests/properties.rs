//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use vdtuner::core::npi::{balanced_base, max_base};
use vdtuner::core::ConfigSpace;
use vdtuner::mobo::hypervolume::{hv2d, hv_improvement_2d};
use vdtuner::mobo::pareto::{non_dominated_indices, pareto_ranks};
use vdtuner::mobo::sampling::latin_hypercube;
use vdtuner::vecdata::ground_truth::TopK;
use vdtuner::vecdata::{DatasetKind, DatasetSpec};

fn point_strategy() -> impl Strategy<Value = [f64; 2]> {
    (0.0f64..100.0, 0.0f64..1.0).prop_map(|(a, b)| [a, b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hypervolume is monotone under adding points.
    #[test]
    fn hv_monotone(points in prop::collection::vec(point_strategy(), 1..20), extra in point_strategy()) {
        let r = [0.0, 0.0];
        let before = hv2d(&points, &r);
        let mut more = points.clone();
        more.push(extra);
        prop_assert!(hv2d(&more, &r) >= before - 1e-9);
    }

    /// HV improvement is exactly the difference of hypervolumes.
    #[test]
    fn hv_improvement_consistent(points in prop::collection::vec(point_strategy(), 1..15), z in point_strategy()) {
        let r = [0.0, 0.0];
        let imp = hv_improvement_2d(&points, &r, &z);
        let mut more = points.clone();
        more.push(z);
        let direct = hv2d(&more, &r) - hv2d(&points, &r);
        prop_assert!((imp - direct.max(0.0)).abs() < 1e-9);
    }

    /// No front member dominates another front member.
    #[test]
    fn front_is_mutually_nondominated(points in prop::collection::vec(point_strategy(), 1..30)) {
        let front = non_dominated_indices(&points);
        for &i in &front {
            for &j in &front {
                if i != j {
                    let (a, b) = (points[i], points[j]);
                    let strictly_dominates =
                        a[0] >= b[0] && a[1] >= b[1] && (a[0] > b[0] || a[1] > b[1]);
                    prop_assert!(!strictly_dominates, "{a:?} dominates {b:?} inside front");
                }
            }
        }
    }

    /// Pareto ranks start at 1 and rank-1 matches the non-dominated set.
    #[test]
    fn ranks_consistent_with_front(points in prop::collection::vec(point_strategy(), 1..25)) {
        let ranks = pareto_ranks(&points);
        let front: std::collections::BTreeSet<usize> =
            non_dominated_indices(&points).into_iter().collect();
        for (i, &r) in ranks.iter().enumerate() {
            prop_assert!(r >= 1);
            prop_assert_eq!(r == 1, front.contains(&i));
        }
    }

    /// TopK returns exactly the k smallest distances (vs full sort).
    #[test]
    fn topk_matches_sort(ds in prop::collection::vec(0.0f32..1e6, 1..200), k in 1usize..20) {
        let mut top = TopK::new(k);
        for (i, &d) in ds.iter().enumerate() {
            top.push(i as u32, d);
        }
        let got: Vec<f32> = top.into_sorted().iter().map(|n| n.distance).collect();
        let mut all = ds.clone();
        all.sort_by(f32::total_cmp);
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    /// The balanced base (Eq. 3) always lies on the non-dominated front and
    /// never exceeds the componentwise max.
    #[test]
    fn balanced_base_on_front(points in prop::collection::vec(point_strategy(), 1..20)) {
        let positive: Vec<[f64;2]> = points.iter().map(|p| [p[0] + 0.1, p[1] + 0.01]).collect();
        let base = balanced_base(&positive);
        let mb = max_base(&positive);
        prop_assert!(base.speed <= mb.speed + 1e-12);
        prop_assert!(base.recall <= mb.recall + 1e-12);
        let front = non_dominated_indices(&positive);
        let on_front = front
            .iter()
            .any(|&i| positive[i][0] == base.speed && positive[i][1] == base.recall);
        prop_assert!(on_front);
    }

    /// Config-space decode is total on the unit cube and sanitization is
    /// idempotent; encode∘decode is a projection (applying it twice is
    /// stable).
    #[test]
    fn config_space_projection(u in prop::collection::vec(0.0f64..=1.0, 16)) {
        let space = ConfigSpace;
        let cfg = space.decode(&u).sanitized(48, 10);
        let enc = space.encode(&cfg);
        prop_assert!(enc.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let cfg2 = space.decode(&enc).sanitized(48, 10);
        // The projection must be stable: a second round-trip is identical.
        prop_assert_eq!(cfg2.summary(), space.decode(&space.encode(&cfg2)).sanitized(48, 10).summary());
        prop_assert_eq!(cfg.index_type, cfg2.index_type);
    }

    /// LHS always stays in the unit cube and is one-point-per-stratum.
    #[test]
    fn lhs_stratified(n in 2usize..40, d in 1usize..8, seed in 0u64..1000) {
        let pts = latin_hypercube(n, d, seed);
        prop_assert_eq!(pts.len(), n);
        for dim in 0..d {
            let mut strata: Vec<usize> = pts
                .iter()
                .map(|p| ((p[dim] * n as f64).floor() as usize).min(n - 1))
                .collect();
            strata.sort_unstable();
            let expect: Vec<usize> = (0..n).collect();
            prop_assert_eq!(&strata, &expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any shard count and seed, the sharded collection returns
    /// bit-identical search results (hence recall) and conserves the total
    /// search cost relative to the single-node collection — sharding is a
    /// serving-topology choice, never a results change.
    #[test]
    fn sharded_collection_matches_single_node(shards in 1usize..=8,
                                              seed in 0u64..32,
                                              u in prop::collection::vec(0.0f64..=1.0, 16)) {
        use vdtuner::vdms::cluster::{ClusterSpec, ShardedCollection};
        use vdtuner::vdms::Collection;

        let w = vdtuner::workload::Workload::prepare(
            DatasetSpec::tiny(DatasetKind::Glove), 10);
        let cfg = ConfigSpace.decode(&u).sanitized(w.dataset.dim(), 10);
        let single = Collection::load(&w.dataset, &cfg, seed).expect("tiny configs fit");
        let sharded = ShardedCollection::load(&w.dataset, &cfg, seed, ClusterSpec::new(shards))
            .expect("even budget split fits the tiny workload");

        let (single_cost, single_res) = single.run_queries(10);
        let (shard_costs, sharded_res) = sharded.run_queries(10);
        prop_assert_eq!(&sharded_res, &single_res);
        let total = shard_costs.into_iter().fold(
            vdtuner::anns::SearchCost::default(), |acc, c| acc + c);
        prop_assert_eq!(total, single_cost);
        let recall_single = w.mean_recall(&single_res);
        let recall_sharded = w.mean_recall(&sharded_res);
        prop_assert_eq!(recall_single.to_bits(), recall_sharded.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shapley efficiency: contributions sum to f(target) − f(baseline) for
    /// arbitrary unit-cube endpoints.
    #[test]
    fn shapley_efficiency(ut in prop::collection::vec(0.0f64..=1.0, 16),
                          ub in prop::collection::vec(0.0f64..=1.0, 16)) {
        let space = ConfigSpace;
        let target = space.decode(&ut);
        let baseline = space.decode(&ub);
        // A deterministic, fast synthetic objective over the config.
        let f = |c: &vdtuner::vdms::VdmsConfig| {
            c.system.segment_max_size_mb * 0.01
                + c.index.nlist as f64 * 0.1
                + c.index_type.ordinal() as f64 * 3.0
        };
        let attr = vdtuner::core::shap::shapley_attribution(f, &target, &baseline, 3, 11);
        let sum: f64 = attr.contributions.iter().map(|(_, v)| v).sum();
        let delta = attr.f_target - attr.f_baseline;
        // Additive functions have zero interaction terms, so even a few
        // permutations are exact up to decode() quantization noise.
        prop_assert!((sum - delta).abs() < 1.0, "sum {sum} delta {delta}");
    }
}
