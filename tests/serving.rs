//! The serving simulator's contracts, stated across crates:
//!
//! * the event loop is deterministic — same seed ⇒ bit-identical trace on
//!   1 vs N rayon worker threads (by property),
//! * `ServingBackend` with `arrival_qps → 0` degrades to the wrapped
//!   offline backend's QPS/recall,
//! * `gracefulTime` is finally load-bearing: the knob moves serving p99 in
//!   a regime where the offline mean-field model attributes *exactly zero*
//!   to it (the SHAP contrast the motivation figure needs).

use proptest::prelude::*;
use vdtuner::core::shap::shapley_attribution;
use vdtuner::core::{TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::vdms::cost_model::CostModel;
use vdtuner::vdms::system_params::SystemParams;
use vdtuner::workload::serving::{simulate, simulate_replicated};
use vdtuner::workload::{Evaluator, ServingBackend, ServingSpec, SimBackend};

fn tiny_workload() -> Workload {
    Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10)
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ bit-identical event trace no matter how many worker
    /// threads execute the simulation: every draw is a pure function of
    /// the query index and the event loop (including JSQ replica routing,
    /// which reads per-group queue depths serially) is serial.
    #[test]
    fn serving_trace_is_thread_count_invariant(
        rate in 50.0f64..2_000.0,
        burst in 0.0f64..3.0,
        graceful in 0.0f64..5_000.0,
        buf in 16.0f64..2_048.0,
        conc in 1usize..64,
        service_ms in 0.5f64..20.0,
        replicas in 1usize..=4,
        random_routing in 0u8..2,
        seed in 0u64..u64::MAX,
    ) {
        let model = CostModel::default();
        let sys = SystemParams {
            graceful_time_ms: graceful,
            insert_buf_size_mb: buf,
            max_read_concurrency: conc,
            ..Default::default()
        };
        let routing = if random_routing == 1 {
            RoutingPolicy::Random { seed: seed ^ 0xABCD }
        } else {
            RoutingPolicy::JoinShortestQueue
        };
        let spec = ServingSpec {
            arrival_qps: rate,
            burstiness: burst,
            requests: 300,
            routing,
            ..Default::default()
        };
        let service = service_ms / 1_000.0;
        let serial =
            with_threads(1, || simulate_replicated(&model, &sys, service, &spec, seed, replicas));
        let parallel =
            with_threads(4, || simulate_replicated(&model, &sys, service, &spec, seed, replicas));
        prop_assert_eq!(&serial, &parallel);
        // Bit-level, not just PartialEq: fingerprint the latency trace and
        // the routing decisions.
        let bits = |t: &vdtuner::workload::ServingTrace| -> Vec<(u64, usize)> {
            t.events.iter().map(|e| (e.latency_secs().to_bits(), e.replica)).collect()
        };
        prop_assert_eq!(bits(&serial), bits(&parallel));
        // And the unreplicated entry point is the one-replica simulation.
        if replicas == 1 {
            let plain = with_threads(4, || simulate(&model, &sys, service, &spec, seed));
            prop_assert_eq!(&serial, &plain);
        }
    }

    /// The tuner-facing objectives of a served evaluation are the wrapped
    /// offline backend's, bit for bit — at any arrival rate, for any seed.
    #[test]
    fn served_objectives_equal_offline_objectives(
        rate in 0.0f64..200.0,
        seed in 0u64..1_000,
    ) {
        let w = tiny_workload();
        let spec = ServingSpec { arrival_qps: rate, requests: 150, ..Default::default() };
        let served = ServingBackend::over_sim(&w, spec).evaluate(&VdmsConfig::default_config(), seed);
        let offline = SimBackend::new(&w).evaluate(&VdmsConfig::default_config(), seed);
        prop_assert_eq!(served.qps.to_bits(), offline.qps.to_bits());
        prop_assert_eq!(served.recall.to_bits(), offline.recall.to_bits());
        prop_assert_eq!(served.memory_gib.to_bits(), offline.memory_gib.to_bits());
    }
}

#[test]
fn rate_zero_serving_backend_is_bitwise_the_offline_backend() {
    let w = tiny_workload();
    let b = ServingBackend::over_sim(&w, ServingSpec::default().at_rate(0.0));
    for seed in [0u64, 7, 99] {
        let served = b.evaluate(&VdmsConfig::default_config(), seed);
        let offline = SimBackend::new(&w).evaluate(&VdmsConfig::default_config(), seed);
        assert_eq!(served, offline, "rate 0 must disable the serving phase entirely");
    }
}

/// Regression for the dead knob: `graceful_time_ms` is clamped and encoded
/// but — before the serving simulator — never moved any evaluated metric
/// once it exceeded the ingestion lag. Under serving it must move p99.
#[test]
fn graceful_time_moves_serving_p99() {
    let model = CostModel::default();
    let spec = ServingSpec { arrival_qps: 300.0, requests: 1_500, ..Default::default() };
    let p99_at = |graceful_ms: f64| {
        let sys = SystemParams { graceful_time_ms: graceful_ms, ..Default::default() };
        simulate(&model, &sys, 0.004, &spec, 17).stats(&spec).p99_latency_secs
    };
    // Default buffer: ingestion lag ≈ 101 ms, flush interval ≈ 77 ms.
    let covered = p99_at(5_000.0); // watermark always old enough: no waits
    let inside_window = p99_at(60.0); // below the lag: waits for a covering flush
    let stalled = p99_at(0.0); // every query waits ≈ the full lag
    assert!(
        inside_window > covered + 0.010,
        "graceful inside the staleness window must add tail latency: {inside_window} vs {covered}"
    );
    assert!(stalled > inside_window, "smaller graceful waits longer: {stalled}");

    // A graceful window that already covers the lag never waits — not
    // even for flush quantization: 120 ms (barely past the ~101 ms lag)
    // and 5000 ms are bit-identical under serving.
    assert_eq!(
        p99_at(120.0).to_bits(),
        covered.to_bits(),
        "a covered config must not pay quantized waits"
    );

    // The offline mean-field stall is *identical* (zero) for 120 ms and
    // 5000 ms; serving agrees on those, but only serving resolves the
    // *phase-dependent* flush wait below the lag — the offline stall is
    // one uniform number there, blind to the tail the quantization adds.
    let sys_a = SystemParams { graceful_time_ms: 120.0, ..Default::default() };
    let sys_b = SystemParams { graceful_time_ms: 5_000.0, ..Default::default() };
    let cost = anns::SearchCost {
        f32_dims: 8_000 * 48,
        heap_pushes: 8_000,
        segments: 1,
        ..Default::default()
    };
    let off_a = model.query_perf(&cost, &sys_a).latency_secs;
    let off_b = model.query_perf(&cost, &sys_b).latency_secs;
    assert_eq!(off_a.to_bits(), off_b.to_bits(), "offline model cannot tell them apart");
}

/// SHAP attribution contrast: the offline latency model charges
/// `gracefulTime` only its uniform mean-field stall; serving p99 adds the
/// phase-dependent flush-quantization tail on top, so the serving
/// attribution is strictly larger — and dominant, since nothing else
/// differs.
#[test]
fn shap_attributes_serving_p99_to_graceful_time() {
    let model = CostModel::default();
    let spec = ServingSpec { arrival_qps: 300.0, requests: 800, ..Default::default() };
    let cost = anns::SearchCost {
        f32_dims: 2_000 * 48,
        heap_pushes: 2_000,
        segments: 1,
        ..Default::default()
    };
    // Target and baseline differ ONLY in gracefulTime: the target sits
    // below the ingestion lag (~101 ms), where queries wait for a
    // covering flush; the baseline is fully covered (no waits).
    let mut target = VdmsConfig::default_config();
    target.system.graceful_time_ms = 60.0;
    let baseline = VdmsConfig::default_config(); // graceful 5000 ms

    let offline_attr = shapley_attribution(
        |c| model.query_perf(&cost, &c.system).latency_secs,
        &target,
        &baseline,
        2,
        5,
    );
    let serving_attr = shapley_attribution(
        |c| simulate(&model, &c.system, 0.004, &spec, 17).stats(&spec).p99_latency_secs,
        &target,
        &baseline,
        2,
        5,
    );
    let graceful = |attr: &vdtuner::core::shap::Attribution| {
        attr.contributions
            .iter()
            .find(|(name, _)| *name == "gracefulTime")
            .map(|(_, v)| *v)
            .expect("gracefulTime dimension exists")
    };
    // The offline model sees only the (lag − graceful) mean stall ≈ 41 ms;
    // serving p99 lands on the worst flush phase and must exceed it.
    assert!(
        graceful(&offline_attr).abs() > 0.001,
        "offline model: the uniform mean-field stall is attributed: {}",
        graceful(&offline_attr)
    );
    assert!(
        graceful(&serving_attr).abs() > graceful(&offline_attr).abs() + 0.010,
        "serving p99 must add the quantized tail on top of the mean stall: {} vs {}",
        graceful(&serving_attr),
        graceful(&offline_attr)
    );
    // And it is the *dominant* dimension — nothing else differs.
    assert_eq!(serving_attr.ranked()[0].0, "gracefulTime");
}

/// Full-pipeline smoke: VDTuner drives an SLO-constrained serving backend;
/// violations surface as failed observations with stats attached, and the
/// run still finds feasible configurations.
#[test]
fn slo_constrained_tuning_records_rejections_as_failures() {
    let w = tiny_workload();
    // Tiny-workload service times are sub-millisecond; a 2 ms SLO at a
    // rate near capacity rejects slow configs but admits fast ones.
    let spec =
        ServingSpec { arrival_qps: 500.0, requests: 600, ..Default::default() }.with_slo(0.002);
    let backend = ServingBackend::over_sim(&w, spec);
    let mut tuner = VdTuner::new(
        TunerOptions {
            mc_samples: 8,
            candidates: vdtuner::mobo::optimize::CandidateOptions {
                n_lhs: 8,
                n_uniform: 4,
                n_local_per_incumbent: 2,
                local_sigma: 0.1,
            },
            ..Default::default()
        },
        3,
    );
    let out = tuner.run_on(backend, 10);
    assert_eq!(out.observations.len(), 10);
    assert!(
        out.observations.iter().any(|o| !o.failed && o.serving.is_some()),
        "some config must satisfy the SLO"
    );
    // Every successful observation satisfied the SLO at evaluation time.
    for o in out.observations.iter().filter(|o| !o.failed) {
        let s = o.serving.expect("served evaluations carry stats");
        assert!(s.p99_latency_secs <= 0.002, "recorded p99 {} breaks the SLO", s.p99_latency_secs);
    }
    assert_eq!(
        out.slo_rejections(),
        out.observations.iter().filter(|o| o.failed && o.serving.is_some()).count()
    );
    // The SLO-aware headline metrics are consistent with the history.
    if let Some(p99) = out.best_p99_with_recall(0.0) {
        assert!(p99 <= 0.002);
    }
}

/// Serving composes with topology co-tuning: a 17-dim candidate deploys
/// its own cluster *and* is exercised by the serving simulator.
#[test]
fn serving_over_topology_backend_supports_co_tuning() {
    let w = tiny_workload();
    let spec = ServingSpec { arrival_qps: 100.0, requests: 200, ..Default::default() };
    let inner = TopologyBackend::new(&w, 4);
    let backend = ServingBackend::new(&w, inner, spec);
    let mut ev = Evaluator::with_backend(backend, 1);
    assert_eq!(ev.info().space_dims, VdmsConfig::BASE_TUNABLES + 1);
    let mut cfg = VdmsConfig::default_config();
    cfg.shards = Some(2);
    let obs = ev.observe(&cfg, 0.0);
    assert!(!obs.failed);
    assert!(obs.serving.is_some(), "sharded serving still records stats");
}
