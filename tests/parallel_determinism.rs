//! The parallel evaluation engine must be a pure speedup: for a fixed seed,
//! observation histories are bit-identical whether the work runs on one
//! rayon thread or many, and the batched APIs degrade exactly to their
//! serial counterparts at q = 1.

use proptest::prelude::*;
use vdtuner::core::{ConfigSpace, TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::workload::{Evaluator, ShardedSimBackend, SimBackend};

fn tiny_workload() -> Workload {
    Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10)
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

/// Bit-level fingerprint of an observation history.
fn fingerprint(out: &vdtuner::core::TuningOutcome) -> Vec<(String, u64, u64, u64, bool)> {
    out.observations
        .iter()
        .map(|o| {
            (
                o.config.summary(),
                o.qps.to_bits(),
                o.recall.to_bits(),
                o.memory_gib.to_bits(),
                o.failed,
            )
        })
        .collect()
}

#[test]
fn vdtuner_run_is_thread_count_invariant() {
    let w = tiny_workload();
    let serial = with_threads(1, || VdTuner::new(small_options(), 42).run(&w, 10));
    let parallel = with_threads(4, || VdTuner::new(small_options(), 42).run(&w, 10));
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn batched_run_is_thread_count_invariant() {
    let w = tiny_workload();
    let serial = with_threads(1, || VdTuner::new(small_options(), 7).run_batched(&w, 12, 4));
    let parallel = with_threads(4, || VdTuner::new(small_options(), 7).run_batched(&w, 12, 4));
    assert_eq!(serial.observations.len(), 12);
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn sharded_backend_run_is_thread_count_invariant() {
    let w = tiny_workload();
    let run = |threads: usize| {
        with_threads(threads, || {
            VdTuner::new(small_options(), 42).run_batched_on(ShardedSimBackend::new(&w, 3), 10, 2)
        })
    };
    assert_eq!(fingerprint(&run(1)), fingerprint(&run(4)));
}

#[test]
fn replicated_serving_run_is_thread_count_invariant() {
    // The full 18-dim stack — replica placement, JSQ-routed serving,
    // shed-charged percentiles — must still be a pure speedup: tuning
    // histories (and the serving stats feeding SLO decisions) are
    // bit-identical on 1 vs 4 rayon threads.
    use vdtuner::core::SpaceSpec;
    use vdtuner::workload::{ServingBackend, ServingSpec, TopologyBackend};
    let w = tiny_workload();
    let spec = ServingSpec { arrival_qps: 400.0, requests: 250, ..Default::default() };
    let run = |threads: usize| {
        with_threads(threads, || {
            VdTuner::with_space(
                small_options(),
                SpaceSpec::with_topology(2).with_replication(3),
                42,
            )
            .run_batched_on(
                ServingBackend::new(&w, TopologyBackend::with_replication(&w, 2, 3), spec),
                10,
                2,
            )
        })
    };
    let (a, b) = (run(1), run(4));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    for (oa, ob) in a.observations.iter().zip(&b.observations) {
        match (oa.serving, ob.serving) {
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.p99_latency_secs.to_bits(), sb.p99_latency_secs.to_bits());
                assert_eq!(sa.shed, sb.shed);
            }
            (sa, sb) => assert_eq!(sa.is_some(), sb.is_some()),
        }
    }
}

#[test]
fn sharded_backend_with_one_shard_matches_sim_backend_bitwise() {
    // Acceptance gate for the backend refactor: the cluster path at
    // shards = 1 is the single-node path, bit for bit, through the whole
    // evaluator (cache, substitution, timing) and the tuner on top of it.
    let w = tiny_workload();
    let configs: Vec<VdmsConfig> = vec![
        VdmsConfig::default_config(),
        VdmsConfig::default_for(IndexType::Flat),
        VdmsConfig::default_for(IndexType::Hnsw),
        VdmsConfig::default_for(IndexType::IvfSq8),
    ];
    let mut single = Evaluator::with_backend(SimBackend::new(&w), 11);
    let mut sharded = Evaluator::with_backend(ShardedSimBackend::new(&w, 1), 11);
    single.observe_batch(&configs, 0.5);
    sharded.observe_batch(&configs, 0.5);
    for (a, b) in single.history().iter().zip(sharded.history()) {
        assert_eq!(a.qps.to_bits(), b.qps.to_bits());
        assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        assert_eq!(a.memory_gib.to_bits(), b.memory_gib.to_bits());
        assert_eq!(a.replay_secs.to_bits(), b.replay_secs.to_bits());
        assert_eq!(a.failed, b.failed);
    }
    assert_eq!(single.total_replay_secs.to_bits(), sharded.total_replay_secs.to_bits());

    let a = VdTuner::new(small_options(), 17).run_on(SimBackend::new(&w), 9);
    let b = VdTuner::new(small_options(), 17).run_on(ShardedSimBackend::new(&w, 1), 9);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn collection_load_and_search_are_thread_count_invariant() {
    // Multi-segment layout so the parallel build and scatter-gather paths
    // actually fan out.
    let ds = DatasetSpec { n: 4000, ..DatasetSpec::tiny(DatasetKind::Glove) }.generate();
    let mut cfg = VdmsConfig::default_for(IndexType::IvfFlat);
    cfg.system.segment_max_size_mb = 64.0;
    cfg.system.segment_seal_proportion = 1.0;
    let cfg = cfg.sanitized(ds.dim(), 10);

    let run = |threads: usize| {
        with_threads(threads, || {
            let col = vdtuner::vdms::Collection::load(&ds, &cfg, 3).unwrap();
            assert!(col.layout().sealed_count() >= 3);
            col.run_queries(10)
        })
    };
    let (cost_a, res_a) = run(1);
    let (cost_b, res_b) = run(4);
    assert_eq!(res_a, res_b);
    assert_eq!(cost_a, cost_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `observe_batch` with q = 1 is the same function as `observe`, for
    /// arbitrary (decoded) configurations.
    #[test]
    fn observe_batch_q1_matches_observe(u in prop::collection::vec(0.0f64..=1.0, 16),
                                        seed in 0u64..32) {
        let w = tiny_workload();
        let cfg = ConfigSpace.decode(&u);
        let mut a = Evaluator::new(&w, seed);
        let oa = a.observe(&cfg, 0.125);
        let mut b = Evaluator::new(&w, seed);
        let ob = b.observe_batch(std::slice::from_ref(&cfg), 0.125);
        prop_assert_eq!(ob.len(), 1);
        prop_assert_eq!(oa.qps.to_bits(), ob[0].qps.to_bits());
        prop_assert_eq!(oa.recall.to_bits(), ob[0].recall.to_bits());
        prop_assert_eq!(oa.memory_gib.to_bits(), ob[0].memory_gib.to_bits());
        prop_assert_eq!(oa.failed, ob[0].failed);
        prop_assert_eq!(oa.replay_secs.to_bits(), ob[0].replay_secs.to_bits());
        prop_assert_eq!(oa.recommend_secs.to_bits(), ob[0].recommend_secs.to_bits());
    }

    /// A whole batch equals the serial replay of the same candidate list,
    /// bit for bit, under any thread count.
    #[test]
    fn observe_batch_matches_serial_loop(us in prop::collection::vec(
                                             prop::collection::vec(0.0f64..=1.0, 16), 2..5),
                                         threads in 1usize..5) {
        let w = tiny_workload();
        let configs: Vec<VdmsConfig> = us.iter().map(|u| ConfigSpace.decode(u)).collect();
        let mut serial = Evaluator::new(&w, 9);
        for c in &configs {
            serial.observe(c, 0.0);
        }
        let mut batched = Evaluator::new(&w, 9);
        let obs = with_threads(threads, || batched.observe_batch(&configs, 0.0));
        prop_assert_eq!(obs.len(), configs.len());
        for (a, b) in serial.history().iter().zip(&obs) {
            prop_assert_eq!(a.qps.to_bits(), b.qps.to_bits());
            prop_assert_eq!(a.recall.to_bits(), b.recall.to_bits());
            prop_assert_eq!(a.failed, b.failed);
        }
    }
}

#[test]
fn tuning_run_is_thread_count_invariant_under_dispatched_kernel() {
    // The SIMD kernel layer must not reintroduce thread sensitivity: with
    // whatever kernel runtime dispatch selected on this host (AVX2/AVX-512
    // where available), a full tuning run is still bit-identical on 1 vs 4
    // rayon threads. Together with the forced-scalar CI arm this pins
    // dispatched == scalar == legacy across the whole stack.
    // Under VDTUNER_FORCE_SCALAR the same test checks the scalar
    // kernel's invariance, which is exactly the forced-scalar CI arm's
    // intent.
    let w = tiny_workload();
    let serial = with_threads(1, || VdTuner::new(small_options(), 1234).run(&w, 10));
    let parallel = with_threads(4, || VdTuner::new(small_options(), 1234).run(&w, 10));
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}
