//! The shard-reactor contracts, stated across crates:
//!
//! * reactor placement is deterministic and the pinned serving simulator
//!   is bit-identical on 1 vs 4 rayon threads (by property),
//! * a 19-dimensional tuning run with the pinning dimension frozen at the
//!   shared policy reproduces the 18-dimensional replication run bit for
//!   bit — serial, batched, and under serving composition,
//! * on a degenerate single-core host topology every pinning policy
//!   collapses to one reactor and reproduces the pre-reactor simulator
//!   bitwise, end to end through `evaluate_sharded`.

use proptest::prelude::*;
use vdtuner::core::{SpaceSpec, TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::vdms::cluster::reactor_placement;
use vdtuner::vdms::system_params::SystemParams;
use vdtuner::vdms::{CostModel, HostTopology, PinningPolicy};
use vdtuner::workload::serving::{simulate_pinned, simulate_replicated};
use vdtuner::workload::{
    evaluate_sharded, Evaluator, ServingBackend, ServingSpec, TopologyBackend,
};

fn multi_segment_workload() -> Workload {
    let spec = DatasetSpec { n: 4_200, ..DatasetSpec::tiny(DatasetKind::Glove) };
    Workload::prepare(spec, 10)
}

/// A config whose layout actually seals several segments at tiny scale.
fn multi_segment_config() -> VdmsConfig {
    let mut cfg = VdmsConfig::default_for(IndexType::IvfFlat);
    cfg.system = SystemParams {
        segment_max_size_mb: 64.0,
        segment_seal_proportion: 1.0,
        ..Default::default()
    };
    cfg
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Segment ownership is a pure function of `(segments, reactors)`:
    /// round-robin, balanced to within one segment, reactor indices in
    /// range — no thread, allocator, or iteration-order sensitivity.
    #[test]
    fn reactor_placement_is_deterministic(segments in 0usize..64, reactors in 1usize..33) {
        let a = reactor_placement(segments, reactors);
        let b = with_threads(4, || reactor_placement(segments, reactors));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), segments);
        let mut owned = vec![0usize; reactors];
        for &r in &a {
            prop_assert!(r < reactors);
            owned[r] += 1;
        }
        let (lo, hi) = (owned.iter().min().unwrap(), owned.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "round-robin balance: {owned:?}");
    }

    /// The pinned serving simulator is a pure speedup: for any policy,
    /// replica count and seed, the event trace is bit-identical on 1 vs 4
    /// rayon threads.
    #[test]
    fn pinned_serving_trace_is_thread_count_invariant(
        policy_ord in 0usize..4,
        replicas in 1usize..=3,
        seed in 0u64..64,
    ) {
        let policy = PinningPolicy::from_ordinal(policy_ord);
        let model = CostModel::default();
        let sys = SystemParams { max_read_concurrency: 8, ..Default::default() };
        let spec = ServingSpec { arrival_qps: 1_200.0, requests: 400, ..Default::default() };
        let run = |threads: usize| {
            with_threads(threads, || {
                simulate_pinned(&model, &sys, 0.004, &spec, seed, replicas, policy, 10)
            })
        };
        prop_assert_eq!(run(1), run(4));
    }

    /// Degenerate host: a 1×1×1 topology gives every policy exactly one
    /// reactor with penalty 1.0 and handoff 0.0, so the pinned serving
    /// schedule is the single-slot shared pool bit for bit.
    #[test]
    fn single_core_pinned_serving_is_bitwise_the_pool(
        policy_ord in 0usize..4,
        replicas in 1usize..=3,
        seed in 0u64..64,
    ) {
        let policy = PinningPolicy::from_ordinal(policy_ord);
        let model = CostModel {
            topology: HostTopology::SINGLE_CORE,
            query_node_cores: 1,
            ..Default::default()
        };
        let sys = SystemParams { max_read_concurrency: 4, ..Default::default() };
        let spec = ServingSpec { arrival_qps: 900.0, requests: 400, ..Default::default() };
        let pinned = simulate_pinned(&model, &sys, 0.004, &spec, seed, replicas, policy, 10);
        let pool = simulate_replicated(&model, &sys, 0.004, &spec, seed, replicas);
        prop_assert_eq!(pinned, pool);
    }
}

/// Bit-level fingerprint of a tuning history: the base configuration (the
/// pinning request is compared separately) plus the exact feedback.
fn fingerprint(out: &vdtuner::core::TuningOutcome) -> Vec<(String, u64, u64, u64, bool)> {
    out.observations
        .iter()
        .map(|o| {
            let base = VdmsConfig { pinning: None, ..o.config };
            (base.summary(), o.qps.to_bits(), o.recall.to_bits(), o.memory_gib.to_bits(), o.failed)
        })
        .collect()
}

/// Acceptance gate for the 19th dimension: tuning the 19-dimensional space
/// with `pinning` frozen at the shared policy (over the pinning-enabled
/// topology backend) yields a history bit-identical to the 18-dimensional
/// replication spec over the plain replication backend — the extra
/// constant coordinate changes no GP prediction, no acquisition value, no
/// evaluation.
#[test]
fn frozen_pinning_dimension_reproduces_replication_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let narrow =
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(4).with_replication(2), 42)
            .run_on(TopologyBackend::with_replication(&w, 4, 2), 12);
    let frozen = VdTuner::with_space(
        small_options(),
        SpaceSpec::with_topology(4).with_replication(2).with_pinned_pinning(PinningPolicy::Shared),
        42,
    )
    .run_on(TopologyBackend::with_pinning(&w, 4, 2), 12);

    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // The frozen run really did carry the 19th dimension end to end.
    for o in &frozen.observations {
        assert_eq!(o.config.pinning, Some(PinningPolicy::Shared));
    }
    for o in &narrow.observations {
        assert_eq!(o.config.pinning, None);
    }
}

/// Same contract under batched (kriging-believer) proposals and serving
/// composition — the serving phase of a shared-pinned candidate is the
/// shared-pool serving phase bit for bit.
#[test]
fn frozen_pinning_reproduces_serving_tuning_bitwise() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let spec = ServingSpec { arrival_qps: 300.0, requests: 300, ..Default::default() };
    let narrow =
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(2).with_replication(2), 7)
            .run_batched_on(
                ServingBackend::new(&w, TopologyBackend::with_replication(&w, 2, 2), spec),
                10,
                3,
            );
    let frozen = VdTuner::with_space(
        small_options(),
        SpaceSpec::with_topology(2).with_replication(2).with_pinned_pinning(PinningPolicy::Shared),
        7,
    )
    .run_batched_on(
        ServingBackend::new(&w, TopologyBackend::with_pinning(&w, 2, 2), spec),
        10,
        3,
    );
    assert_eq!(fingerprint(&narrow), fingerprint(&frozen));
    // Serving stats (p99 included) agree bitwise wherever both exist.
    for (a, b) in narrow.observations.iter().zip(&frozen.observations) {
        match (a.serving, b.serving) {
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.p99_latency_secs.to_bits(), sb.p99_latency_secs.to_bits());
                assert_eq!(sa.goodput_qps.to_bits(), sb.goodput_qps.to_bits());
            }
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    }
}

/// Degenerate host, offline path: with a single-core topology in the cost
/// model, `evaluate_sharded` under any pinning policy reproduces the
/// unpinned (pre-reactor) evaluation bitwise — every field of the outcome.
#[test]
fn single_core_topology_reproduces_the_pre_reactor_replay_bitwise() {
    let mut w = multi_segment_workload();
    w.cost_model = CostModel {
        topology: HostTopology::SINGLE_CORE,
        query_node_cores: 1,
        ..Default::default()
    };
    let base = multi_segment_config();
    for shards in [1usize, 2] {
        for replicas in [1usize, 2] {
            let spec = ClusterSpec::replicated(shards, replicas);
            let mut cfg = base;
            cfg.pinning = None;
            let legacy = evaluate_sharded(&w, &cfg, 5, spec);
            for policy in PinningPolicy::ALL {
                cfg.pinning = Some(policy);
                let pinned = evaluate_sharded(&w, &cfg, 5, spec);
                assert_eq!(
                    legacy.qps.to_bits(),
                    pinned.qps.to_bits(),
                    "{policy:?} {shards}x{replicas}"
                );
                assert_eq!(legacy.recall.to_bits(), pinned.recall.to_bits());
                assert_eq!(legacy.memory_gib.to_bits(), pinned.memory_gib.to_bits());
                assert_eq!(legacy.simulated_secs.to_bits(), pinned.simulated_secs.to_bits());
                assert_eq!(legacy.failure, pinned.failure);
            }
        }
    }
}

/// Co-tuning end to end: with the pinning knob live the tuner proposes
/// valid policies, the evaluator accepts every candidate, and the budget
/// explores more than one policy.
#[test]
fn co_tuning_explores_pinning_policies() {
    let w = Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10);
    let mut tuner = VdTuner::with_space(
        small_options(),
        SpaceSpec::with_topology(4).with_replication(2).with_pinning(),
        3,
    );
    let out = tuner.run_on(TopologyBackend::with_pinning(&w, 4, 2), 16);
    assert_eq!(out.observations.len(), 16);
    let mut policies = std::collections::BTreeSet::new();
    for o in &out.observations {
        let p = o.config.pinning.expect("co-tuning candidates always request a policy");
        policies.insert(p.ordinal());
    }
    assert!(policies.len() > 1, "the tuner must explore the pinning axis: {policies:?}");
    assert!(out.observations.iter().any(|o| !o.failed));
}

/// The evaluator cache keys pinning: two candidates differing only in the
/// pinning policy are distinct entries with distinct QPS on a
/// multi-segment layout.
#[test]
fn pinning_request_is_part_of_the_cache_key() {
    let w = multi_segment_workload();
    let mut ev = Evaluator::with_backend(TopologyBackend::with_pinning(&w, 2, 2), 1);
    let mut cfg = multi_segment_config();
    cfg.shards = Some(2);
    cfg.replicas = Some(1);
    cfg.pinning = Some(PinningPolicy::Shared);
    let shared = ev.observe(&cfg, 0.0);
    cfg.pinning = Some(PinningPolicy::SmtAvoid);
    let avoided = ev.observe(&cfg, 0.0);
    assert!(!shared.failed && !avoided.failed);
    assert_ne!(
        shared.qps.to_bits(),
        avoided.qps.to_bits(),
        "reactors reshape the perf law, so the cache must not alias policies"
    );
    assert_eq!(ev.len(), 2);
}
