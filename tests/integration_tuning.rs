//! End-to-end tuning integration tests spanning every crate in the
//! workspace: VDTuner and all four baselines against a live simulator.

use vdtuner::baselines::{OpenTunerStyle, OtterTuneStyle, QehviTuner, RandomLhs};
use vdtuner::core::{BudgetAllocation, SurrogateKind, TunerMode, TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::vecdata::DatasetSpec as Spec;
use vdtuner::workload::{run_tuner, Evaluator, Tuner};

fn tiny_workload() -> Workload {
    Workload::prepare(Spec::tiny(DatasetKind::Glove), 10)
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 16,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 24,
            n_uniform: 8,
            n_local_per_incumbent: 4,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

#[test]
fn vdtuner_full_pipeline() {
    let w = tiny_workload();
    let mut tuner = VdTuner::new(small_options(), 3);
    let out = tuner.run(&w, 14);
    assert_eq!(out.observations.len(), 14);
    // All seven index-type defaults must have been tried first.
    let first7: Vec<_> = out.observations[..7].iter().map(|o| o.config.index_type).collect();
    assert_eq!(first7.len(), 7);
    // Tuning must find something at least as good as the best default.
    let best_default = out.observations[..7].iter().map(|o| o.qps).fold(0.0, f64::max);
    let best_overall = out.observations.iter().map(|o| o.qps).fold(0.0, f64::max);
    assert!(best_overall >= best_default);
    // Timing breakdown recorded.
    assert!(out.total_recommend_secs > 0.0);
    assert!(out.total_replay_secs > 0.0);
}

#[test]
fn every_baseline_runs_against_the_simulator() {
    let w = tiny_workload();
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomLhs::new(5)),
        Box::new(OpenTunerStyle::new(5)),
        Box::new(OtterTuneStyle::new(5, 4)),
        Box::new(QehviTuner::new(5, 4)),
    ];
    for mut t in tuners {
        let mut ev = Evaluator::new(&w, 5);
        run_tuner(t.as_mut(), &mut ev, 8);
        assert_eq!(ev.len(), 8, "{}", t.name());
        assert!(
            ev.history().iter().any(|o| !o.failed),
            "{} never produced a successful evaluation",
            t.name()
        );
    }
}

#[test]
fn constrained_mode_prefers_feasible_region() {
    let w = tiny_workload();
    let mut opts = small_options();
    opts.mode = TunerMode::Constrained { recall_limit: 0.7 };
    let mut tuner = VdTuner::new(opts, 4);
    let out = tuner.run(&w, 18);
    let feasible = out.observations.iter().filter(|o| o.recall >= 0.7).count();
    assert!(
        feasible >= out.observations.len() / 3,
        "constrained tuning should mostly sample feasible configs ({feasible}/18)"
    );
}

#[test]
fn bootstrap_reuses_previous_phase() {
    let w = tiny_workload();
    let mut opts = small_options();
    opts.mode = TunerMode::Constrained { recall_limit: 0.6 };
    let phase1 = VdTuner::new(opts.clone(), 4).run(&w, 12);

    let mut opts2 = small_options();
    opts2.mode = TunerMode::Constrained { recall_limit: 0.7 };
    opts2.bootstrap = phase1.observations.clone();
    let mut tuner = VdTuner::new(opts2, 5);
    let phase2 = tuner.run(&w, 10);
    assert_eq!(phase2.observations.len(), 10);
    assert!(phase2.best_qps_with_recall(0.7).is_some());
}

#[test]
fn cost_effective_mode_runs_and_reports_memory() {
    let w = tiny_workload();
    let mut opts = small_options();
    opts.mode = TunerMode::CostEffective;
    let out = VdTuner::new(opts, 6).run(&w, 12);
    let (mem, _) = out.memory_mean_std();
    assert!(mem > 0.0);
    assert!(out.best_qpd_with_recall(0.0).is_some());
}

#[test]
fn ablation_variants_all_work() {
    let w = tiny_workload();
    for (budget, surrogate) in [
        (BudgetAllocation::RoundRobin, SurrogateKind::Polling),
        (BudgetAllocation::SuccessiveAbandon { window: 2 }, SurrogateKind::Native),
    ] {
        let mut opts = small_options();
        opts.budget = budget;
        opts.surrogate = surrogate;
        let out = VdTuner::new(opts, 7).run(&w, 12);
        assert_eq!(out.observations.len(), 12);
    }
}

#[test]
fn tuning_beats_random_on_average_rank() {
    // Weak but meaningful: with the same budget, VDTuner's best balanced
    // point should not be dominated by Random's.
    let w = tiny_workload();
    let vd = VdTuner::new(small_options(), 8).run(&w, 16);
    let mut random = RandomLhs::new(8);
    let mut ev = Evaluator::new(&w, 8);
    run_tuner(&mut random, &mut ev, 16);
    let vd_best = vd.best_qps_with_recall(0.8);
    let rnd_best = ev.best_qps_with_recall(0.8);
    if let (Some(v), Some(r)) = (vd_best, rnd_best) {
        assert!(
            v >= r * 0.5,
            "VDTuner ({v:.0}) collapsed far below Random ({r:.0}) at the same budget"
        );
    }
}
