//! The declarative space contract: the legacy 16-dimensional spec and the
//! topology-extended spec share one encoder/decoder machinery, round-trip
//! cleanly, and — with the shard count frozen at one node — the
//! 17-dimensional spec reproduces 16-dimensional tuning bit for bit.

use proptest::prelude::*;
use vdtuner::core::{SpaceError, SpaceSpec, TunerOptions, VdTuner};
use vdtuner::prelude::*;

fn tiny_workload() -> Workload {
    Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10)
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

/// Approximate config equality after one projection: integer knobs are on
/// the decode grid and must be exactly stable; float knobs may drift by
/// ulps through the log/exp round-trip.
fn assert_projection_stable(a: &VdmsConfig, b: &VdmsConfig) {
    assert_eq!(a.index_type, b.index_type);
    assert_eq!(a.index, b.index);
    assert_eq!(a.shards, b.shards);
    assert_eq!(a.replicas, b.replicas);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(1.0);
    assert!(close(a.system.segment_max_size_mb, b.system.segment_max_size_mb));
    assert!(close(a.system.segment_seal_proportion, b.system.segment_seal_proportion));
    assert!(close(a.system.graceful_time_ms, b.system.graceful_time_ms));
    assert!(close(a.system.insert_buf_size_mb, b.system.insert_buf_size_mb));
    assert_eq!(a.system.max_read_concurrency, b.system.max_read_concurrency);
    assert_eq!(a.system.chunk_rows, b.system.chunk_rows);
    assert_eq!(a.system.build_parallelism, b.system.build_parallelism);
}

/// One round-trip check for [`encode_decode_idempotent_in_both_specs`]:
/// decode, re-encode (must stay in the unit cube), decode again — the
/// projection must be stable across another round-trip.
fn check_roundtrip(spec: &SpaceSpec, u: &[f64]) {
    let c1 = spec.decode(u).expect("point is wide enough for either spec");
    let enc = spec.encode(&c1);
    assert_eq!(enc.len(), spec.dims());
    assert!(enc.iter().all(|&x| (0.0..=1.0).contains(&x)), "{enc:?}");
    let c2 = spec.decode(&enc).expect("encoded points span the space");
    assert_projection_stable(&c1, &c2);
    let c3 = spec.decode(&spec.encode(&c2)).unwrap();
    assert_projection_stable(&c2, &c3);
    if spec.has_topology() {
        assert!(c1.shards.is_some());
    } else {
        assert_eq!(c1.shards, None);
    }
    if spec.has_replication() {
        assert!(c1.replicas.is_some());
    } else {
        assert_eq!(c1.replicas, None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode ∘ decode is idempotent (up to float ulps) and stays in the
    /// unit cube, for random points across all index types and both specs.
    #[test]
    fn encode_decode_idempotent_in_all_specs(
        u in prop::collection::vec(0.0f64..=1.0, 18),
        type_ord in 0usize..7,
    ) {
        // Force every index type to be exercised, not just the rounded mix.
        let mut u = u;
        u[0] = type_ord as f64 / 6.0;
        check_roundtrip(&SpaceSpec::legacy(), &u);
        check_roundtrip(&SpaceSpec::with_topology(8), &u);
        check_roundtrip(&SpaceSpec::with_topology(8).with_replication(4), &u);
        check_roundtrip(&SpaceSpec::with_topology(8).with_pinned_replication(3), &u);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The specs agree on every shared dimension: each extension is pure,
    /// never a reinterpretation.
    #[test]
    fn extended_specs_extend_the_legacy_spec(u in prop::collection::vec(0.0f64..=1.0, 18)) {
        let wide = SpaceSpec::with_topology(8).decode(&u).unwrap();
        let narrow = SpaceSpec::legacy().decode(&u).unwrap();
        prop_assert_eq!(wide.index_type, narrow.index_type);
        prop_assert_eq!(wide.index, narrow.index);
        prop_assert_eq!(wide.system, narrow.system);
        prop_assert_eq!(narrow.shards, None);
        prop_assert!(matches!(wide.shards, Some(1..=8)));
        let widest = SpaceSpec::with_topology(8).with_replication(4).decode(&u).unwrap();
        prop_assert_eq!(widest.index, wide.index);
        prop_assert_eq!(widest.system, wide.system);
        prop_assert_eq!(widest.shards, wide.shards);
        prop_assert_eq!(wide.replicas, None);
        prop_assert!(matches!(widest.replicas, Some(1..=4)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Short points are typed errors through every spec — never aborts.
    #[test]
    fn short_points_are_typed_errors(len in 0usize..16) {
        let u = vec![0.5; len];
        prop_assert_eq!(
            SpaceSpec::legacy().decode(&u),
            Err(SpaceError::TooFewCoords { expected: 16, got: len })
        );
        prop_assert_eq!(
            SpaceSpec::with_topology(4).decode(&u),
            Err(SpaceError::TooFewCoords { expected: 17, got: len })
        );
        prop_assert_eq!(
            SpaceSpec::with_topology(4).with_replication(4).decode(&u),
            Err(SpaceError::TooFewCoords { expected: 18, got: len })
        );
    }
}

/// Bit-level fingerprint of a tuning history: the base configuration (the
/// topology request is compared separately) plus the exact feedback.
fn fingerprint(out: &vdtuner::core::TuningOutcome) -> Vec<(String, u64, u64, u64, bool)> {
    out.observations
        .iter()
        .map(|o| {
            let base = VdmsConfig { shards: None, ..o.config };
            (base.summary(), o.qps.to_bits(), o.recall.to_bits(), o.memory_gib.to_bits(), o.failed)
        })
        .collect()
}

/// Acceptance gate for the spec refactor: tuning the 17-dimensional space
/// with `shard_count` frozen at 1 (over the topology backend) yields a
/// history bit-identical to the 16-dimensional spec over the single-node
/// simulator — the extra constant coordinate changes no GP prediction, no
/// acquisition value, no evaluation.
#[test]
fn frozen_topology_dimension_reproduces_legacy_tuning_bitwise() {
    let w = tiny_workload();
    let legacy = VdTuner::new(small_options(), 42).run_on(SimBackend::new(&w), 12);
    let mut topo_tuner = VdTuner::with_space(small_options(), SpaceSpec::with_topology(1), 42);
    let frozen = topo_tuner.run_on(TopologyBackend::new(&w, 1), 12);

    assert_eq!(fingerprint(&legacy), fingerprint(&frozen));
    // The frozen run really did carry the 17th dimension end to end.
    for o in &frozen.observations {
        assert_eq!(o.config.shards, Some(1));
    }
    for o in &legacy.observations {
        assert_eq!(o.config.shards, None);
    }
}

/// Same contract under batched (kriging-believer) proposals.
#[test]
fn frozen_topology_dimension_reproduces_legacy_batched_tuning_bitwise() {
    let w = tiny_workload();
    let legacy = VdTuner::new(small_options(), 7).run_batched_on(SimBackend::new(&w), 12, 3);
    let frozen = VdTuner::with_space(small_options(), SpaceSpec::with_topology(1), 7)
        .run_batched_on(TopologyBackend::new(&w, 1), 12, 3);
    assert_eq!(fingerprint(&legacy), fingerprint(&frozen));
}

/// Co-tuning end to end: with a real shard range the tuner proposes valid
/// shapes, the evaluator accepts every candidate, and the budget explores
/// more than one topology.
#[test]
fn co_tuning_explores_topologies() {
    let w = tiny_workload();
    let mut tuner = VdTuner::with_space(small_options(), SpaceSpec::with_topology(8), 3);
    let out = tuner.run_on(TopologyBackend::new(&w, 8), 16);
    assert_eq!(out.observations.len(), 16);
    let mut shapes = std::collections::BTreeSet::new();
    for o in &out.observations {
        let s = o.config.shards.expect("co-tuning candidates always request a shape");
        assert!((1..=8).contains(&s), "{}", o.config.summary());
        shapes.insert(s);
    }
    assert!(shapes.len() > 1, "the tuner must explore the topology axis: {shapes:?}");
    assert!(out.observations.iter().any(|o| !o.failed));
    // No candidate was rejected by the space gate: every failure, if any,
    // is a real evaluation failure, not a dimensionality mismatch.
    assert!(out
        .observations
        .iter()
        .all(|o| !o.failed || o.replay_secs > 0.0 || o.memory_gib > 0.0));
}

/// Co-tuning is deterministic for a fixed seed, like every other path.
#[test]
fn co_tuning_is_deterministic() {
    let w = tiny_workload();
    let run = |seed| {
        VdTuner::with_space(small_options(), SpaceSpec::with_topology(4), seed)
            .run_on(TopologyBackend::new(&w, 4), 10)
    };
    let key = |out: &vdtuner::core::TuningOutcome| -> Vec<(String, u64)> {
        out.observations.iter().map(|o| (o.config.summary(), o.qps.to_bits())).collect()
    };
    assert_eq!(key(&run(9)), key(&run(9)));
}
