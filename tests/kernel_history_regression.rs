//! Bit-level regression gate for the kernel-layer refactor: a fixed-seed
//! tuning run and a per-index evaluation sweep must reproduce the exact
//! histories the workspace produced *before* the SIMD kernel layer and the
//! grouped-storage index refactor landed. The digests below were captured
//! on the pre-refactor tree with the identical setup; if any kernel,
//! storage, or cost-accounting change perturbs a single bit of any
//! observation (config summary, QPS, recall, memory, failure flag), the
//! digest moves and this test fails.
//!
//! Paired with `tests/parallel_determinism.rs` (thread-count invariance)
//! and `crates/vecdata/tests/kernel_bitwise.rs` (per-op bit-identity),
//! this closes the loop: dispatched SIMD == forced scalar == the legacy
//! implementation, end to end.

use vdtuner::core::{TunerOptions, VdTuner};
use vdtuner::prelude::*;
use vdtuner::workload::Evaluator;

/// Captured on the pre-kernel tree (seed 42, 10 iterations, tiny GloVe).
const TUNING_DIGEST: u64 = 0x289a6d216ee7da83;
/// Captured on the pre-kernel tree (seed 11, 7 default configs, floor 0.5).
const PER_INDEX_DIGEST: u64 = 0x5feba684b0c2c3f3;

/// FNV-1a over the little-endian bytes of each part.
fn digest(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in parts {
        for i in 0..8 {
            h ^= (x >> (i * 8)) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn tiny_workload() -> Workload {
    Workload::prepare(DatasetSpec::tiny(DatasetKind::Glove), 10)
}

fn small_options() -> TunerOptions {
    TunerOptions {
        mc_samples: 8,
        candidates: vdtuner::mobo::optimize::CandidateOptions {
            n_lhs: 8,
            n_uniform: 4,
            n_local_per_incumbent: 2,
            local_sigma: 0.1,
        },
        ..Default::default()
    }
}

/// Seed-42, 10-iteration tuning-history digest under the ambient kernel
/// policy.
fn tuning_digest() -> u64 {
    let w = tiny_workload();
    let out = VdTuner::new(small_options(), 42).run(&w, 10);
    let mut parts = Vec::new();
    for o in &out.observations {
        parts.extend(o.config.summary().bytes().map(|b| b as u64));
        parts.push(o.qps.to_bits());
        parts.push(o.recall.to_bits());
        parts.push(o.memory_gib.to_bits());
        parts.push(o.failed as u64);
    }
    digest(parts)
}

#[test]
fn tuning_history_matches_pre_kernel_baseline_bitwise() {
    assert_eq!(
        tuning_digest(),
        TUNING_DIGEST,
        "tuning history diverged from the pre-kernel baseline — a kernel, \
         storage, or cost change broke bit-identity"
    );
}

#[test]
fn exact_history_is_immune_to_a_live_fast_tier() {
    // Guardrail for the opt-in fast tier: merely compiling it in — and even
    // *running* its kernels in the same process — must not perturb a single
    // bit of the Exact-policy tuning history. Warm the fast dispatch and
    // exercise a relaxed-order kernel first, then replay the seed-42 run.
    use vdtuner::vecdata::kernel;
    let fast = kernel::select_policy(false, kernel::KernelPolicy::Fast);
    let a: Vec<f32> = (0..96).map(|i| (0.37 * i as f32).sin()).collect();
    let b: Vec<f32> = (0..96).map(|i| (0.11 * i as f32).cos()).collect();
    assert!(fast.dot(&a, &b).is_finite() && fast.l2_sq(&a, &b).is_finite());

    if kernel::active_policy() != kernel::KernelPolicy::Exact {
        // Under VDTUNER_KERNEL=fast the history is intentionally different;
        // this guardrail is about the default Exact policy only.
        eprintln!("skipping: ambient policy is not Exact");
        return;
    }
    assert_eq!(
        tuning_digest(),
        TUNING_DIGEST,
        "a live fast tier leaked into the Exact-policy tuning history"
    );
}

#[test]
fn per_index_evaluation_matches_pre_kernel_baseline_bitwise() {
    let w = tiny_workload();
    let configs: Vec<VdmsConfig> = [
        IndexType::Flat,
        IndexType::IvfFlat,
        IndexType::IvfSq8,
        IndexType::IvfPq,
        IndexType::Scann,
        IndexType::Hnsw,
        IndexType::AutoIndex,
    ]
    .iter()
    .map(|&t| VdmsConfig::default_for(t))
    .collect();
    let mut ev = Evaluator::new(&w, 11);
    ev.observe_batch(&configs, 0.5);
    let mut parts = Vec::new();
    for o in ev.history() {
        parts.push(o.qps.to_bits());
        parts.push(o.recall.to_bits());
        parts.push(o.memory_gib.to_bits());
        parts.push(o.failed as u64);
    }
    assert_eq!(
        digest(parts),
        PER_INDEX_DIGEST,
        "per-index evaluation diverged from the pre-kernel baseline — every \
         index type must score bit-identically through the kernel layer"
    );
}
