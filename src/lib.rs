//! # VDTuner — automated performance tuning for vector data management systems
//!
//! This is the facade crate of a full Rust reproduction of
//! *VDTuner: Automated Performance Tuning for Vector Data Management Systems*
//! (ICDE 2024). It re-exports the workspace crates so downstream users can
//! depend on a single crate:
//!
//! * [`vecdata`] — datasets, distances, exact ground truth,
//! * [`anns`] — the seven Milvus index types (FLAT, IVF_FLAT, IVF_SQ8,
//!   IVF_PQ, HNSW, SCANN, AUTOINDEX),
//! * [`vdms`] — the Milvus-like vector data management system simulator,
//!   including the sharded, replicated multi-node serving layer
//!   (`vdms::cluster`: shard placement, replica groups, query routing),
//! * [`workload`] — the vector-db-benchmark-style replay harness and the
//!   evaluation-backend seam (`EvalBackend`: single-node `SimBackend`,
//!   multi-node `ShardedSimBackend`, topology-tuning `TopologyBackend`,
//!   and the live-traffic `ServingBackend` over the discrete-event
//!   serving simulator in `workload::serving`),
//! * [`gp`] — Gaussian-process regression,
//! * [`mobo`] — multi-objective Bayesian-optimization building blocks,
//! * [`core`] (package `vdtuner-core`) — the VDTuner algorithm itself,
//! * [`baselines`] — Random/LHS, OpenTuner-, OtterTune-style and qEHVI
//!   baseline tuners.
//!
//! ## Quickstart
//!
//! ```no_run
//! use vdtuner::prelude::*;
//!
//! let spec = DatasetSpec::scaled(DatasetKind::Glove);
//! let workload = Workload::prepare(spec, 10);
//! let mut tuner = VdTuner::new(TunerOptions::default(), 42);
//! let outcome = tuner.run(&workload, 30);
//! println!("best balanced config: {:?}", outcome.best_balanced());
//! ```
#![deny(unsafe_code)]

pub use anns;
pub use baselines;
pub use gp;
pub use mobo;
pub use vdms;
pub use vdtuner_core as core;
pub use vecdata;
pub use workload;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::core::{SpaceSpec, TunerOptions, TuningOutcome, VdTuner};
    pub use anns::params::IndexType;
    pub use vdms::cluster::{ClusterSpec, RoutingPolicy};
    pub use vdms::config::VdmsConfig;
    pub use vecdata::{Dataset, DatasetKind, DatasetSpec};
    pub use workload::{
        EvalBackend, ServingBackend, ServingSpec, ServingStats, ShardedSimBackend, SimBackend,
        TopologyBackend, Workload,
    };
}
