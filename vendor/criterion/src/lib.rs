//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements the slice this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — on top of plain `std::time::Instant` timing. Per benchmark it
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! `name  time: [min  median  max]` in criterion's familiar shape.
//!
//! Under `cargo test` (which runs `harness = false` bench targets with no
//! `--bench` flag) every benchmark body executes exactly once, so benches
//! stay compile-and-run-checked without costing test time; full measurement
//! happens only under `cargo bench`, which passes `--bench`.
// A benchmark harness exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Re-exported compiler fence against over-optimization.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (the shim treats all variants alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One benchmark's measurement loop.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `f`, repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.samples.push(0.0);
            return;
        }
        // Warm-up and iteration-count calibration: grow the batch until one
        // timed batch takes >= 1ms so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.samples.push(0.0);
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity; the shim's calibration is time-based already.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Parse CLI args the way cargo invokes `harness = false` bench
    /// binaries: `cargo bench` passes `--bench` (full measurement), while
    /// `cargo test` passes no mode flag at all. Like upstream criterion,
    /// absence of `--bench` means test mode — each benchmark body runs
    /// exactly once, keeping benches compile-and-run-checked without
    /// costing measurement time.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut bench_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => self.test_mode = true,
                a if a.starts_with("--") => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        if !bench_mode {
            self.test_mode = true;
        }
        self
    }

    fn skipped(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if self.skipped(id) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: test passed");
            return;
        }
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id}: no samples");
            return;
        }
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        println!("{id:<50} time: [{} {} {}]", fmt_ns(s[0]), fmt_ns(median), fmt_ns(s[s.len() - 1]));
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        self.run_one(id, f);
        self
    }

    /// Open a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Define a benchmark group: either `criterion_group!(name, fn_a, fn_b)` or
/// the braced form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
