//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace carries the
//! slice of proptest it uses: the [`Strategy`] trait with `prop_map`, range
//! and tuple strategies, `prop::collection::vec`, [`ProptestConfig`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and there is **no
//! shrinking** — a failing case reports its inputs verbatim. For the
//! workspace's invariant-style properties that trade-off is fine: failures
//! reproduce exactly on re-run.

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Seed a [`TestRng`] from a test name (used by the `proptest!` expansion).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    TestRng::from_seed(h)
}

/// Runner configuration; only the case count is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Produce one value for the current case.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Round-up at the top of the mantissa range can land exactly
                // on `hi`, which is what makes this the inclusive variant.
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategies!(f64, f32);

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_strategies!(usize, u64, u32, u16, u8, i64, i32);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Upstream proptest's prelude exposes the crate under the name `prop`
    /// (so `prop::collection::vec(..)` works); mirror that.
    pub use crate as prop;
}

/// Assert inside a `proptest!` body; failure aborts the current case with
/// the formatted message (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err(format!(
                "prop_assert_eq failed: {} != {}\n  left:  {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::core::result::Result::Err(format!(
                "prop_assert_ne failed: {} == {} ({:?})",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

/// Define property tests. Supports the config header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| -> ::core::result::Result<(), ::std::string::String> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let f = Strategy::new_value(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
            let i = Strategy::new_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&i));
            let inc = Strategy::new_value(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&inc));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_rng("vecs");
        for _ in 0..200 {
            let v = Strategy::new_value(&collection::vec(0u64..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let fixed = Strategy::new_value(&collection::vec(0.0f64..1.0, 16), &mut rng);
            assert_eq!(fixed.len(), 16);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::test_rng("map");
        let s = (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| [a, b]);
        let p = Strategy::new_value(&s, &mut rng);
        assert!(p.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_works(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}
