//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace carries the slice of `rand` it actually uses: a seedable
//! deterministic [`rngs::StdRng`], the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits with `gen`, `gen_range` and friends, and [`seq::SliceRandom`]'s
//! `shuffle`/`choose`. The generator is SplitMix64 — statistically strong
//! enough for dataset synthesis, LHS sampling and Monte-Carlo acquisition
//! estimation, and fully reproducible from a `u64` seed.
//!
//! This is NOT the upstream `rand` crate: streams differ from upstream
//! `StdRng`, but every consumer in this workspace only relies on
//! determinism-given-seed, not on a specific stream.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait SampleStandard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the top bit: low bits of weak generators can be biased.
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64·span,
                // immaterial at the workspace's range sizes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as SampleStandard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`u64`, `f64` in `[0,1)`, `bool`, ...).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Pre-mix so that seeds 0 and 1 don't produce correlated heads.
            let mut rng = StdRng { state: state.wrapping_add(0x9E37_79B9_7F4A_7C15) };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let lone = r.gen_range(5usize..6);
        assert_eq!(lone, 5);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut r).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "{trues}");
    }
}
