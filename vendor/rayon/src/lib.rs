//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no network access, so the workspace carries the
//! slice of rayon it uses: `par_iter()` / `into_par_iter()` with
//! `map(..).collect::<Vec<_>>()`, `rayon::join`, `current_num_threads`, and
//! a `ThreadPoolBuilder` whose pools scope a thread-count override via
//! `install`. Execution model: each `collect` splits the items into
//! contiguous chunks, runs one `std::thread` per chunk, and reassembles the
//! results **in input order** — so any pure `map` is bit-identical to its
//! serial equivalent regardless of thread count.
//!
//! Nested parallel calls (a `par_iter` inside a worker) degrade to serial
//! execution instead of spawning threads quadratically, mirroring how rayon
//! re-uses the worker that is already running.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set inside worker closures and `install`-scoped regions.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while the current thread is already a parallel worker.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Global default, settable once via [`ThreadPoolBuilder::build_global`].
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let local = THREAD_OVERRIDE.with(|o| o.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    hardware_threads()
}

/// Run `a` and `b` potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || IN_WORKER.with(|w| w.get()) {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon shim: join worker panicked"))
    })
}

/// Ordered parallel map: the workhorse behind every `collect`.
///
/// Items are moved into contiguous chunks; chunk `i` of the output always
/// holds the results for chunk `i` of the input, so output order equals
/// input order no matter how many threads ran.
fn parallel_map<I, U, F>(items: Vec<I>, f: F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 || IN_WORKER.with(|w| w.get()) {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon shim: map worker panicked"));
        }
        out
    })
}

pub mod iter {
    use super::parallel_map;

    /// A not-yet-mapped parallel iterator over owned items.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    /// A mapped parallel iterator, ready to collect.
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I: Send> ParIter<I> {
        pub fn map<U, F>(self, f: F) -> ParMap<I, F>
        where
            U: Send,
            F: Fn(I) -> U + Sync,
        {
            ParMap { items: self.items, f }
        }

        /// Number of items this iterator will produce.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    impl<I, U, F> ParMap<I, F>
    where
        I: Send,
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        pub fn collect<C: FromParallelIterator<U>>(self) -> C {
            C::from_ordered_vec(parallel_map(self.items, self.f))
        }

        /// Sum of the mapped values, folded **in input order** (bit-stable
        /// for floats across thread counts).
        pub fn sum<S>(self) -> S
        where
            S: core::iter::Sum<U>,
        {
            parallel_map(self.items, self.f).into_iter().sum()
        }
    }

    /// Sinks for [`ParMap::collect`].
    pub trait FromParallelIterator<U> {
        fn from_ordered_vec(v: Vec<U>) -> Self;
    }

    impl<U> FromParallelIterator<U> for Vec<U> {
        fn from_ordered_vec(v: Vec<U>) -> Vec<U> {
            v
        }
    }

    impl<U, E> FromParallelIterator<Result<U, E>> for Result<Vec<U>, E> {
        /// First error in input order wins, matching a serial `collect`.
        fn from_ordered_vec(v: Vec<Result<U, E>>) -> Result<Vec<U>, E> {
            v.into_iter().collect()
        }
    }

    /// Conversion into a parallel iterator over owned items.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for core::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter { items: self.collect() }
        }
    }

    /// Conversion into a parallel iterator over `&T`.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Error type for [`ThreadPoolBuilder::build`]; the shim cannot fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// 0 means "use the environment/hardware default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }

    /// Install the thread count as the process-wide default.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A scoped thread-count override (the shim has no persistent workers; the
/// pool only pins how many threads parallel calls under `install` use).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count active on the current thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = THREAD_OVERRIDE.with(|o| o.replace(self.num_threads));
        let out = f();
        THREAD_OVERRIDE.with(|o| o.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            hardware_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
    }

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = xs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 7] {
            let par: Vec<usize> =
                with_threads(threads, || xs.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<usize> = with_threads(4, || (0..37).into_par_iter().map(|i| i * i).collect());
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn float_sum_is_bit_stable_across_thread_counts() {
        let xs: Vec<f64> = (0..501).map(|i| (i as f64).sin() * 1e-3).collect();
        let one: f64 = with_threads(1, || xs.par_iter().map(|&x| x * x).sum());
        let many: f64 = with_threads(8, || xs.par_iter().map(|&x| x * x).sum());
        assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let xs: Vec<i32> = (0..20).collect();
        let r: Result<Vec<i32>, String> = with_threads(3, || {
            xs.par_iter()
                .map(|&x| if x % 7 == 6 { Err(format!("bad {x}")) } else { Ok(x) })
                .collect()
        });
        assert_eq!(r.unwrap_err(), "bad 6");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = with_threads(2, || join(|| 40 + 2, || "ok"));
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        let out: Vec<usize> = with_threads(4, || {
            (0..8)
                .into_par_iter()
                .map(|i| (0..8).into_par_iter().map(|j| i * 8 + j).collect::<Vec<_>>().len())
                .collect()
        });
        assert_eq!(out, vec![8; 8]);
    }

    #[test]
    fn install_scopes_and_restores() {
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), 0);
        let inside = with_threads(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(THREAD_OVERRIDE.with(|o| o.get()), 0);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> =
            with_threads(4, || Vec::<u8>::new().into_par_iter().map(|x| x).collect());
        assert!(empty.is_empty());
        let single: Vec<u8> =
            with_threads(4, || vec![5u8].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(single, vec![6]);
    }
}
