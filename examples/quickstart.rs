//! Quickstart: generate a workload, evaluate the default configuration,
//! run VDTuner for a handful of iterations, and print the winner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vdtuner::prelude::*;

fn main() {
    // 1. A GloVe-like workload: 8k angular vectors, top-100 queries,
    //    10 concurrent clients (the paper's §V-A setting).
    let spec = DatasetSpec::scaled(DatasetKind::Glove);
    println!("preparing workload {:?} ({} vectors, dim {})", spec.kind.name(), spec.n, spec.dim);
    let workload = Workload::paper_default(spec);

    // 2. How does the out-of-the-box configuration do?
    let default = vdtuner::workload::evaluate(&workload, &VdmsConfig::default_config(), 0);
    println!(
        "default (AUTOINDEX): {:.0} QPS at recall {:.3}, {:.1} GiB",
        default.qps, default.recall, default.memory_gib
    );

    // 3. Tune. VDTuner needs no prior knowledge: it samples each index
    //    type's default once, then lets polling Bayesian optimization and
    //    successive abandon allocate the remaining budget.
    let iterations = 40;
    let mut tuner = VdTuner::new(TunerOptions::default(), 42);
    let outcome = tuner.run(&workload, iterations);

    // 4. Results: the Pareto front and the most balanced configuration.
    println!("\nPareto-optimal configurations found in {iterations} evaluations:");
    for &i in &outcome.pareto_indices() {
        let o = &outcome.observations[i];
        println!("  {:>7.0} QPS  recall {:.3}  {}", o.qps, o.recall, o.config.summary());
    }
    if let Some(best) = outcome.best_balanced() {
        println!("\nmost balanced: {:.0} QPS at recall {:.3}", best.qps, best.recall);
        println!("  {}", best.config.summary());
        let (ds, dr) = outcome.improvement_over_default(default.qps, default.recall);
        println!(
            "improvement over default: +{:.1}% speed (no recall sacrifice), +{:.1}% recall (no speed sacrifice)",
            ds * 100.0,
            dr * 100.0
        );
    }
}
