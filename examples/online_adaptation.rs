//! Online adaptation across workload changes — the paper's future-work
//! direction ("we would like to extend VDTuner to an online version to
//! actively capture different workloads"), built from the pieces the
//! library already has: the tuner keeps serving while the workload drifts,
//! and re-tunes by bootstrapping its surrogate with the observations from
//! the previous workload instead of starting cold.
//!
//! ```sh
//! cargo run --release --example online_adaptation
//! ```

use vdtuner::core::{TunerOptions, VdTuner};
use vdtuner::prelude::*;

fn main() {
    let iterations = 28;

    // Epoch 1: the service starts on a GloVe-like embedding corpus.
    let w1 = Workload::paper_default(DatasetSpec::scaled(DatasetKind::Glove));
    let mut tuner = VdTuner::new(TunerOptions::default(), 21);
    let epoch1 = tuner.run(&w1, iterations);
    let best1 = epoch1.best_balanced().expect("epoch 1 found configs");
    println!(
        "epoch 1 (GloVe-like):      best balanced {:.0} QPS @ recall {:.3} [{}]",
        best1.qps, best1.recall, best1.config.index_type
    );

    // Epoch 2: the product pivots — documents are re-embedded with a text
    // model (ArXiv-titles-like distribution). Same VDMS, new workload.
    let w2 = Workload::paper_default(DatasetSpec::scaled(DatasetKind::ArxivTitles));

    // Cold restart: learn the new workload from scratch.
    let cold = VdTuner::new(TunerOptions::default(), 22).run(&w2, iterations);

    // Warm restart: bootstrap the surrogate with epoch-1 observations. The
    // shared system parameters (gracefulTime, buffers, concurrency) carry
    // over even though the data distribution changed.
    let warm_opts = TunerOptions { bootstrap: epoch1.observations.clone(), ..Default::default() };
    let warm = VdTuner::new(warm_opts, 22).run(&w2, iterations);

    for (name, out) in [("cold restart", &cold), ("warm (bootstrapped)", &warm)] {
        let best = out.best_qps_with_recall(0.9);
        println!(
            "epoch 2 ({name:>18}): best {} QPS @ recall ≥ 0.9 after {iterations} evals",
            best.map_or("-".into(), |v| format!("{v:.0}")),
        );
    }

    let (c, w) = (cold.best_qps_with_recall(0.9), warm.best_qps_with_recall(0.9));
    if let (Some(c), Some(w)) = (c, w) {
        if w >= c {
            println!("\nwarm start matched or beat the cold restart — prior knowledge transfers");
        } else {
            println!(
                "\nwarm start trailed cold here ({w:.0} vs {c:.0}); transfer helps most when \
                 workloads are closer — try GloVe → deep-image"
            );
        }
    }
}
