//! Explore the raw index-type trade-offs that make VDMS tuning hard.
//!
//! Reproduces the paper's Figure 3 intuition interactively: for each of the
//! seven Milvus index types, evaluate the default parameters and a few
//! hand-picked variants, printing the (speed, recall, memory) triangle.
//! This uses only the `vdms` + `workload` layers — no tuner — and is the
//! place to start when adding a new index type to the `anns` crate.
//!
//! ```sh
//! cargo run --release --example index_explorer
//! ```

use vdtuner::anns::params::{IndexParams, IndexType};
use vdtuner::prelude::*;
use vdtuner::workload::evaluate;

fn main() {
    let spec = DatasetSpec::scaled(DatasetKind::Glove);
    let workload = Workload::paper_default(spec);

    println!("{:<12} {:>24} {:>10} {:>8} {:>9}", "index", "variant", "QPS", "recall", "GiB");
    println!("{}", "-".repeat(68));
    for it in IndexType::ALL {
        for (label, params) in variants(it, workload.dataset.dim()) {
            let mut cfg = VdmsConfig::default_for(it);
            cfg.index = params;
            let o = evaluate(&workload, &cfg, 1);
            match o.failure {
                None => println!(
                    "{:<12} {:>24} {:>10.0} {:>8.3} {:>9.2}",
                    it.name(),
                    label,
                    o.qps,
                    o.recall,
                    o.memory_gib
                ),
                Some(e) => println!("{:<12} {:>24} failed: {e}", it.name(), label),
            }
        }
    }
    println!(
        "\nNo single index wins on all axes — exactly the paper's Challenge 2.\n\
         Run the `quickstart` example to let VDTuner navigate this space."
    );
}

/// Default parameters plus one \"fast\" and one \"accurate\" variant per type.
fn variants(it: IndexType, dim: usize) -> Vec<(&'static str, IndexParams)> {
    let d = IndexParams::default();
    let mut v = vec![("default", d)];
    match it {
        IndexType::Flat | IndexType::AutoIndex => {}
        IndexType::IvfFlat | IndexType::IvfSq8 => {
            v.push(("fast (nprobe=2)", IndexParams { nprobe: 2, ..d }));
            v.push(("accurate (nprobe=64)", IndexParams { nprobe: 64, ..d }));
        }
        IndexType::IvfPq => {
            v.push(("fast (m=4, nbits=4)", IndexParams { m: 4, nbits: 4, ..d }));
            v.push(("accurate (m=16, nbits=8)", IndexParams { m: 16, nbits: 8, ..d }));
        }
        IndexType::Hnsw => {
            v.push(("fast (ef=32)", IndexParams { ef: 32, ..d }));
            v.push(("accurate (M=32, ef=400)", IndexParams { hnsw_m: 32, ef: 400, ..d }));
        }
        IndexType::Scann => {
            v.push(("fast (reorder_k=32)", IndexParams { reorder_k: 32, ..d }));
            v.push(("accurate (reorder_k=512)", IndexParams { reorder_k: 512, ..d }));
        }
    }
    v.into_iter().map(|(l, p)| (l, p.sanitized(dim, 100))).collect()
}
