//! Cost-aware tuning: optimize queries-per-dollar instead of raw QPS.
//!
//! Cloud deployments pay for memory. The paper's §V-E replaces the speed
//! objective with cost-effectiveness `QP$ = QPS / (η · memory)` (Eq. 8) and
//! shows the tuner then trades a little speed for much smaller indexes and
//! buffers. This example runs both objectives on the Geo-radius-like
//! workload and compares what they buy.
//!
//! ```sh
//! cargo run --release --example cost_aware_tuning
//! ```

use vdtuner::core::{TunerMode, TunerOptions, VdTuner};
use vdtuner::prelude::*;

fn main() {
    let spec = DatasetSpec::scaled(DatasetKind::GeoRadius);
    let workload = Workload::paper_default(spec);
    let iterations = 32;

    let qps_run = {
        let mut t = VdTuner::new(TunerOptions::default(), 11);
        t.run(&workload, iterations)
    };
    let qpd_run = {
        let opts = TunerOptions { mode: TunerMode::CostEffective, ..Default::default() };
        let mut t = VdTuner::new(opts, 11);
        t.run(&workload, iterations)
    };

    println!("objective comparison at recall > 0.9 (Geo-radius-like):");
    for (name, run) in [("maximize QPS", &qps_run), ("maximize QP$", &qpd_run)] {
        let best_qps = run.best_qps_with_recall(0.9);
        let best_qpd = run.best_qpd_with_recall(0.9);
        let (mem_mean, mem_std) = run.memory_mean_std();
        println!(
            "  {name:>14}: best QPS {}  best QP$ {}  sampled memory {:.2} GiB ± {:.2}",
            best_qps.map_or("-".into(), |v| format!("{v:.0}")),
            best_qpd.map_or("-".into(), |v| format!("{v:.1}")),
            mem_mean,
            mem_std,
        );
    }

    // The cost-aware run should sample configurations with markedly lower
    // memory (paper: 3.89 GiB ± 1.75 vs 5.19 GiB ± 2.44).
    let (m_qps, _) = qps_run.memory_mean_std();
    let (m_qpd, _) = qpd_run.memory_mean_std();
    if m_qpd < m_qps {
        println!(
            "\ncost-aware tuning cut mean sampled memory by {:.0}% — same shape as the paper",
            (1.0 - m_qpd / m_qps) * 100.0
        );
    } else {
        println!(
            "\nnote: at this tiny budget the memory gap has not opened yet; raise `iterations`"
        );
    }
}
