//! Tuning for a RAG (retrieval-augmented generation) service with a hard
//! recall requirement.
//!
//! A RAG pipeline cares about answer grounding: recall below a threshold
//! poisons the LLM's context. The operator therefore asks: *maximize
//! throughput subject to recall > 0.9*. This is the paper's §IV-F scenario;
//! VDTuner switches its acquisition to constrained EI (Eq. 7) and can
//! bootstrap from earlier tuning sessions with a different threshold.
//!
//! ```sh
//! cargo run --release --example rag_constraint_tuning
//! ```

use vdtuner::core::{TunerMode, TunerOptions, VdTuner};
use vdtuner::prelude::*;

fn main() {
    // ArXiv-titles-like text embeddings: the classic RAG corpus shape.
    let spec = DatasetSpec::scaled(DatasetKind::ArxivTitles);
    let workload = Workload::paper_default(spec);
    let iterations = 36;

    // Phase 1: the service launches with a soft recall floor of 0.85.
    let opts_085 =
        TunerOptions { mode: TunerMode::Constrained { recall_limit: 0.85 }, ..Default::default() };
    let mut tuner = VdTuner::new(opts_085, 7);
    let phase1 = tuner.run(&workload, iterations);
    report("phase 1 (recall > 0.85)", &phase1, 0.85);

    // Phase 2: product tightens the requirement to 0.9. Instead of
    // restarting from scratch, bootstrap the surrogate with phase-1 data
    // (§IV-F "Bootstrapping with Previous Data").
    let opts_09 = TunerOptions {
        mode: TunerMode::Constrained { recall_limit: 0.9 },
        bootstrap: phase1.observations.clone(),
        ..Default::default()
    };
    let mut tuner = VdTuner::new(opts_09, 8);
    let phase2 = tuner.run(&workload, iterations);
    report("phase 2 (recall > 0.90, bootstrapped)", &phase2, 0.9);
}

fn report(title: &str, outcome: &vdtuner::core::TuningOutcome, floor: f64) {
    println!("== {title}");
    match outcome.best_qps_with_recall(floor) {
        Some(qps) => {
            let best = outcome
                .observations
                .iter()
                .filter(|o| !o.failed && o.recall >= floor)
                .max_by(|a, b| a.qps.total_cmp(&b.qps))
                .expect("feasible observation");
            println!("  best feasible: {qps:.0} QPS at recall {:.3}", best.recall);
            println!("  config: {}", best.config.summary());
        }
        None => println!("  no feasible configuration found — increase the budget"),
    }
    let feasible = outcome.observations.iter().filter(|o| !o.failed && o.recall >= floor).count();
    println!("  {}/{} evaluations were feasible\n", feasible, outcome.observations.len());
}
